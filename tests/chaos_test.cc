#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint.h"
#include "core/metrics_board.h"
#include "core/trainer.h"
#include "dist/comm.h"
#include "dist/fault.h"
#include "graph/datasets.h"

namespace ecg {
namespace {

using core::CheckpointStore;
using core::TrainOptions;
using dist::FaultInjector;
using dist::FaultKind;
using dist::MessageHub;
using dist::RecvOutcome;
using dist::ScopedFaultInjector;

// ---------------------------------------------------------------------
// Fault schedule grammar and determinism.

TEST(FaultInjectorTest, ParsesConfigKeysAndRules) {
  auto r = FaultInjector::Parse(
      "drop=0.05,corrupt=0.01,seed=7,retries=2,timeout_ms=500,"
      "backoff=0.01,restart=2.5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->seed(), 7u);
  EXPECT_EQ(r->max_retries(), 2u);
  EXPECT_EQ(r->recv_timeout_ms(), 500u);
  EXPECT_DOUBLE_EQ(r->retry_backoff_seconds(), 0.01);
  EXPECT_DOUBLE_EQ(r->restart_seconds(), 2.5);
  ASSERT_EQ(r->rules().size(), 2u);
  EXPECT_EQ(r->rules()[0].kind, FaultKind::kDrop);
  EXPECT_DOUBLE_EQ(r->rules()[0].probability, 0.05);
  EXPECT_EQ(r->rules()[1].kind, FaultKind::kCorrupt);
}

TEST(FaultInjectorTest, ParsesFiltersAndCrash) {
  auto r = FaultInjector::Parse(
      "drop=1@epoch=3-5:layer=1:from=0:to=1;"
      "delay=0.5@secs=0.25;crash@epoch=4:worker=1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rules().size(), 3u);
  const auto& drop = r->rules()[0];
  EXPECT_EQ(drop.epoch_lo, 3);
  EXPECT_EQ(drop.epoch_hi, 5);
  EXPECT_EQ(drop.layer, 1);
  EXPECT_EQ(drop.from, 0);
  EXPECT_EQ(drop.to, 1);
  EXPECT_DOUBLE_EQ(r->rules()[1].seconds, 0.25);
  EXPECT_EQ(r->rules()[2].kind, FaultKind::kCrash);
  EXPECT_EQ(r->rules()[2].from, 1);
  EXPECT_TRUE(r->HasCrashSchedule());
}

TEST(FaultInjectorTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(FaultInjector::Parse("drop=1.5").ok());
  EXPECT_FALSE(FaultInjector::Parse("explode=1").ok());
  EXPECT_FALSE(FaultInjector::Parse("drop=abc").ok());
  EXPECT_FALSE(FaultInjector::Parse("drop=0.1@banana").ok());
  EXPECT_FALSE(FaultInjector::Parse("drop=0.1@epoch=x").ok());
  EXPECT_FALSE(FaultInjector::Parse("seed=-3").ok());
  // Crash without the mandatory filters would be unactionable.
  EXPECT_FALSE(FaultInjector::Parse("crash").ok());
  EXPECT_FALSE(FaultInjector::Parse("crash@worker=1").ok());
  EXPECT_FALSE(FaultInjector::Parse("crash@epoch=2").ok());
}

TEST(FaultInjectorTest, DecisionsAreDeterministicAcrossInstances) {
  auto a = FaultInjector::Parse("drop=0.3,corrupt=0.1,seed=11");
  auto b = FaultInjector::Parse("drop=0.3,corrupt=0.1,seed=11");
  auto c = FaultInjector::Parse("drop=0.3,corrupt=0.1,seed=12");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  int differs_from_c = 0;
  for (uint32_t e = 0; e < 40; ++e) {
    for (uint32_t att = 0; att < 3; ++att) {
      const uint64_t tag = MessageHub::MakeTag(e, 1, 2);
      const auto da = a->OnAttempt(0, 1, tag, att);
      const auto db = b->OnAttempt(0, 1, tag, att);
      EXPECT_EQ(da.drop, db.drop);
      EXPECT_EQ(da.corrupt, db.corrupt);
      const auto dc = c->OnAttempt(0, 1, tag, att);
      if (da.drop != dc.drop || da.corrupt != dc.corrupt) ++differs_from_c;
    }
  }
  // A different seed must produce a different schedule somewhere.
  EXPECT_GT(differs_from_c, 0);
}

TEST(FaultInjectorTest, PreprocessingTrafficIsExempt) {
  auto r = FaultInjector::Parse("drop=1,corrupt=1");
  ASSERT_TRUE(r.ok());
  const uint64_t pre_tag = MessageHub::MakeTag(0xFFFFFFFFu, 0, 2);
  for (uint32_t att = 0; att < 4; ++att) {
    const auto d = r->OnAttempt(0, 1, pre_tag, att);
    EXPECT_FALSE(d.drop);
    EXPECT_FALSE(d.corrupt);
  }
  EXPECT_FALSE(r->PermanentlyLost(0, 1, pre_tag));
}

TEST(FaultInjectorTest, PermanentlyLostAgreesWithPerAttemptDraws) {
  auto r = FaultInjector::Parse("drop=0.5,seed=42,retries=3");
  ASSERT_TRUE(r.ok());
  int lost = 0;
  for (uint32_t e = 1; e <= 400; ++e) {
    const uint64_t tag = MessageHub::MakeTag(e, 0, 3);
    bool all_fail = true;
    for (uint32_t att = 0; att <= r->max_retries(); ++att) {
      if (!r->OnAttempt(2, 0, tag, att).FailsAttempt()) all_fail = false;
    }
    EXPECT_EQ(r->PermanentlyLost(2, 0, tag), all_fail) << "epoch " << e;
    lost += all_fail ? 1 : 0;
  }
  // p^4 = 1/16: expect some permanent losses in 400 draws, but a minority.
  EXPECT_GT(lost, 0);
  EXPECT_LT(lost, 100);
}

TEST(FaultInjectorTest, CrashScheduleFiresExactlyOnce) {
  auto r = FaultInjector::Parse("crash@epoch=5:worker=1");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->TakeCrash(4));
  EXPECT_TRUE(r->TakeCrash(5));
  // The post-restore re-run of epoch 5 must proceed.
  EXPECT_FALSE(r->TakeCrash(5));
  EXPECT_FALSE(r->TakeCrash(6));
  EXPECT_EQ(r->counters().crashes.load(), 1u);
}

// ---------------------------------------------------------------------
// Hub-level chaos: framed transport, retry/NACK, degradation triggers.

TEST(ChaosHubTest, EmptyInjectorRoundTripsFramedPayloads) {
  FaultInjector inj;  // no rules: framing + bounded receive, no faults
  MessageHub hub(2);
  hub.set_fault_injector(&inj);
  const uint64_t tag = MessageHub::MakeTag(1, 0, 2);
  hub.Send(0, 1, tag, {1, 2, 3, 4, 5});
  std::vector<uint8_t> out;
  RecvOutcome outcome;
  ASSERT_TRUE(hub.TryRecv(1, 0, tag, &out, &outcome).ok());
  EXPECT_EQ(out, (std::vector<uint8_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_DOUBLE_EQ(outcome.penalty_seconds, 0.0);
  // Traffic accounting reports the logical payload, not the envelope.
  EXPECT_EQ(hub.stats().TotalBytes(), 5u);
}

TEST(ChaosHubTest, TargetedDropExhaustsRetriesAndReportsLoss) {
  auto inj = FaultInjector::Parse("drop=1@from=0:to=1,retries=2");
  ASSERT_TRUE(inj.ok());
  MessageHub hub(2);
  hub.set_fault_injector(&*inj);
  const uint64_t tag = MessageHub::MakeTag(3, 1, 2);
  hub.Send(0, 1, tag, {7, 7, 7});
  std::vector<uint8_t> out;
  RecvOutcome outcome;
  const Status s = hub.TryRecv(1, 0, tag, &out, &outcome);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(inj->counters().dropped.load(), 3u);  // attempts 0..2
  EXPECT_EQ(inj->counters().retried.load(), 2u);
  EXPECT_EQ(inj->counters().lost.load(), 1u);
  // Retry backoff charged to the simulated clock, not wall time.
  EXPECT_GT(outcome.penalty_seconds, 0.0);
  EXPECT_TRUE(inj->PermanentlyLost(0, 1, tag));
}

TEST(ChaosHubTest, RetryRecoversWhenALaterAttemptSucceeds) {
  auto inj = FaultInjector::Parse("drop=0.5,seed=42,retries=3");
  ASSERT_TRUE(inj.ok());
  // Find a message whose first delivery attempt is dropped but which is
  // not permanently lost — the NACK/retransmit path must recover it.
  uint64_t tag = 0;
  for (uint32_t e = 1; e < 2000; ++e) {
    const uint64_t t = MessageHub::MakeTag(e, 0, 2);
    if (inj->OnAttempt(0, 1, t, 0).drop && !inj->PermanentlyLost(0, 1, t)) {
      tag = t;
      break;
    }
  }
  ASSERT_NE(tag, 0u) << "no suitable tag in sweep";
  MessageHub hub(2);
  hub.set_fault_injector(&*inj);
  hub.Send(0, 1, tag, {9, 8, 7});
  std::vector<uint8_t> out;
  RecvOutcome outcome;
  ASSERT_TRUE(hub.TryRecv(1, 0, tag, &out, &outcome).ok());
  EXPECT_EQ(out, (std::vector<uint8_t>{9, 8, 7}));
  EXPECT_GE(outcome.attempts, 2u);
  EXPECT_GT(inj->counters().retried.load(), 0u);
  EXPECT_EQ(inj->counters().lost.load(), 0u);
}

TEST(ChaosHubTest, CorruptionIsCaughtByCrcAndRetried) {
  auto inj = FaultInjector::Parse("corrupt=1@from=0:to=1,retries=2");
  ASSERT_TRUE(inj.ok());
  MessageHub hub(2);
  hub.set_fault_injector(&*inj);
  const uint64_t tag = MessageHub::MakeTag(2, 0, 2);
  hub.Send(0, 1, tag, std::vector<uint8_t>(128, 0x5A));
  std::vector<uint8_t> out;
  const Status s = hub.TryRecv(1, 0, tag, &out);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(inj->counters().corrupted.load(), 3u);
  EXPECT_EQ(inj->counters().lost.load(), 1u);
}

TEST(ChaosHubTest, DuplicateDeliveriesAreDrained) {
  auto inj = FaultInjector::Parse("dup=1@from=0:to=1");
  ASSERT_TRUE(inj.ok());
  MessageHub hub(2);
  hub.set_fault_injector(&*inj);
  const uint64_t tag = MessageHub::MakeTag(1, 1, 3);
  hub.Send(0, 1, tag, {4, 4});
  std::vector<uint8_t> out;
  ASSERT_TRUE(hub.TryRecv(1, 0, tag, &out).ok());
  EXPECT_EQ(out, (std::vector<uint8_t>{4, 4}));
  EXPECT_EQ(inj->counters().duplicated.load(), 1u);
  // The duplicate must not satisfy a different tag's receive.
  const uint64_t other = MessageHub::MakeTag(1, 2, 3);
  hub.Send(0, 1, other, {5});
  ASSERT_TRUE(hub.TryRecv(1, 0, other, &out).ok());
  EXPECT_EQ(out, (std::vector<uint8_t>{5}));
}

TEST(ChaosHubTest, InjectedDelayChargesSimulatedSeconds) {
  auto inj = FaultInjector::Parse("delay=1@secs=0.25:from=0:to=1");
  ASSERT_TRUE(inj.ok());
  MessageHub hub(2);
  hub.set_fault_injector(&*inj);
  const uint64_t tag = MessageHub::MakeTag(4, 0, 2);
  hub.Send(0, 1, tag, {1});
  std::vector<uint8_t> out;
  RecvOutcome outcome;
  ASSERT_TRUE(hub.TryRecv(1, 0, tag, &out, &outcome).ok());
  EXPECT_DOUBLE_EQ(outcome.penalty_seconds, 0.25);
  EXPECT_EQ(inj->counters().delayed.load(), 1u);
}

TEST(ChaosHubTest, StragglerDelaysEverySendOfTheSlowWorker) {
  auto inj = FaultInjector::Parse("straggle=1@worker=0:secs=0.125");
  ASSERT_TRUE(inj.ok());
  MessageHub hub(3);
  hub.set_fault_injector(&*inj);
  std::vector<uint8_t> out;
  RecvOutcome outcome;
  const uint64_t t0 = MessageHub::MakeTag(1, 0, 2);
  hub.Send(0, 2, t0, {1});
  ASSERT_TRUE(hub.TryRecv(2, 0, t0, &out, &outcome).ok());
  EXPECT_DOUBLE_EQ(outcome.penalty_seconds, 0.125);
  // Worker 1 is not the straggler: its sends arrive on time.
  hub.Send(1, 2, t0, {2});
  ASSERT_TRUE(hub.TryRecv(2, 1, t0, &out, &outcome).ok());
  EXPECT_DOUBLE_EQ(outcome.penalty_seconds, 0.0);
}

TEST(ChaosHubTest, ConcurrentPeerDelaysChargeMaxNotSum) {
  // Two peers each delay their halo message to worker 0 by 50 ms. The
  // fan-in waits on all peers concurrently (arrival-order TryRecvAny), so
  // the wait costs ~50 ms of simulated time — summing the per-peer
  // penalties to ~100 ms would model a receiver that waits for each peer
  // one after another, which the split-phase receive explicitly avoids.
  auto inj = FaultInjector::Parse("delay=1@secs=0.05:to=0");
  ASSERT_TRUE(inj.ok());
  ScopedFaultInjector scoped(&*inj);

  // Triangle: 3 workers, one vertex each; worker 0 receives from both.
  const std::vector<std::pair<uint32_t, uint32_t>> edges = {
      {0, 1}, {1, 2}, {2, 0}};
  tensor::Matrix features(3, 4);
  auto g = graph::Graph::Build(3, edges, std::move(features), {0, 0, 0}, 1);
  ASSERT_TRUE(g.ok());
  graph::Partition part;
  part.num_parts = 3;
  part.owner = {0, 1, 2};
  part.members = {{0}, {1}, {2}};
  std::vector<core::WorkerPlan> plans;
  ASSERT_TRUE(core::BuildWorkerPlans(*g, part, &plans).ok());

  dist::SimulatedCluster cluster(3, dist::NetworkModel{});
  cluster.hub().set_fault_injector(&*inj);
  double comm[3] = {0.0, 0.0, 0.0};
  auto status = cluster.Run([&](dist::WorkerContext* ctx) -> Status {
    const core::WorkerPlan& plan = plans[ctx->worker_id()];
    auto ex = core::MakeFpExchanger(core::FpMode::kExact, {}, 2, plan);
    tensor::Matrix owned(plan.num_owned(), 4);
    tensor::Matrix halo(plan.num_halo(), 4);
    ECG_RETURN_IF_ERROR(ex->Exchange(ctx, plan, 1, 1, owned, &halo));
    comm[ctx->worker_id()] = ctx->comm_seconds();
    return Status::OK();
  });
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(inj->counters().delayed.load(), 2u);
  // The 50 ms delay is charged once (plus sub-millisecond wire time), not
  // once per delayed peer.
  EXPECT_GE(comm[0], 0.05);
  EXPECT_LT(comm[0], 0.08);
  EXPECT_LT(comm[1], 0.01);
  EXPECT_LT(comm[2], 0.01);
}

TEST(ChaosHubTest, TimeoutWithoutSenderIsIoError) {
  auto inj = FaultInjector::Parse("timeout_ms=50,retries=0");
  ASSERT_TRUE(inj.ok());
  MessageHub hub(2);
  hub.set_fault_injector(&*inj);
  std::vector<uint8_t> out;
  const Status s = hub.TryRecv(1, 0, MessageHub::MakeTag(1, 0, 2), &out);
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_NE(s.message().find("no sender"), std::string::npos);
}

TEST(ChaosHubTest, BlockedRecvStillWorksAcrossThreadsWithInjector) {
  FaultInjector inj;
  MessageHub hub(2);
  hub.set_fault_injector(&inj);
  const uint64_t tag = MessageHub::MakeTag(2, 0, 2);
  std::vector<uint8_t> got;
  std::thread receiver([&] { got = hub.Recv(1, 0, tag); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  hub.Send(0, 1, tag, {3, 3, 3});
  receiver.join();
  EXPECT_EQ(got.size(), 3u);
}

// ---------------------------------------------------------------------
// Checkpoint store.

TEST(CheckpointStoreTest, InMemoryRoundTrip) {
  CheckpointStore store(3);
  EXPECT_FALSE(store.has_checkpoint());
  store.Begin(7);
  store.PutGlobal({1, 2, 3});
  store.PutWorker(0, {10});
  store.PutWorker(1, {11, 11});
  store.PutWorker(2, {});
  ASSERT_TRUE(store.Commit().ok());
  ASSERT_TRUE(store.has_checkpoint());
  EXPECT_EQ(store.next_epoch(), 7u);
  EXPECT_EQ(store.global(), (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(store.worker_blob(1), (std::vector<uint8_t>{11, 11}));
  EXPECT_TRUE(store.worker_blob(2).empty());
  EXPECT_EQ(store.LatestPath(), "");
}

TEST(CheckpointStoreTest, DiskMirrorRoundTripsAndValidates) {
  const std::string dir = ::testing::TempDir();
  CheckpointStore store(2, dir);
  store.Begin(4);
  store.PutGlobal({9, 9, 9, 9});
  store.PutWorker(0, {1});
  store.PutWorker(1, {2, 2});
  ASSERT_TRUE(store.Commit().ok());
  const std::string path = store.LatestPath();

  CheckpointStore loaded(2);
  ASSERT_TRUE(loaded.LoadFromFile(path).ok());
  EXPECT_EQ(loaded.next_epoch(), 4u);
  EXPECT_EQ(loaded.global(), (std::vector<uint8_t>{9, 9, 9, 9}));
  EXPECT_EQ(loaded.worker_blob(1), (std::vector<uint8_t>{2, 2}));

  // Worker-count mismatch is rejected.
  CheckpointStore wrong(3);
  EXPECT_EQ(wrong.LoadFromFile(path).code(), StatusCode::kInvalidArgument);

  // A flipped body byte fails the whole-file CRC.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-1, std::ios::end);
    char last;
    f.seekg(-1, std::ios::end);
    f.get(last);
    f.seekp(-1, std::ios::end);
    f.put(static_cast<char>(last ^ 0x40));
  }
  CheckpointStore corrupted(2);
  const Status s = corrupted.LoadFromFile(path);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("CRC"), std::string::npos);
  std::remove(path.c_str());
}

TEST(MetricsBoardTest, RollbackForgetsEpochsAndRecomputesBest) {
  core::internal::MetricsBoard board;
  board.SetEpochBaseline(10.0, 1000);
  const uint64_t c1[3] = {8, 6, 5}, t1[3] = {10, 10, 10};
  board.AddLocal(0, 2.0, c1, t1);
  board.FinalizeEpoch(0, 11.0, 1500, 10, 0);
  const uint64_t c2[3] = {9, 9, 7}, t2[3] = {10, 10, 10};
  board.AddLocal(0, 1.0, c2, t2);
  board.FinalizeEpoch(1, 12.5, 2200, 10, 0);
  ASSERT_EQ(board.epochs.size(), 2u);
  EXPECT_DOUBLE_EQ(board.best_val, 0.9);

  board.RollbackTo(1);
  EXPECT_EQ(board.epochs.size(), 1u);
  EXPECT_DOUBLE_EQ(board.best_val, 0.6);
  EXPECT_EQ(board.best_epoch, 0u);
  EXPECT_FALSE(board.stop.load());
  // Baselines rewound to "end of kept epochs": the next finalize books
  // everything since epoch 0 ended.
  const uint64_t c3[3] = {10, 8, 8}, t3[3] = {10, 10, 10};
  board.AddLocal(0, 0.5, c3, t3);
  board.FinalizeEpoch(1, 20.0, 5000, 10, 0);
  ASSERT_EQ(board.epochs.size(), 2u);
  EXPECT_DOUBLE_EQ(board.epochs[1].sim_seconds, 9.0);   // 20 - 11
  EXPECT_EQ(board.epochs[1].comm_bytes, 3500u);         // 5000 - 1500
}

// ---------------------------------------------------------------------
// End-to-end chaos training.

graph::Graph TinyGraph() { return *graph::LoadDataset("tiny"); }

TrainOptions EcOptions(int epochs) {
  TrainOptions opt;
  opt.model.num_layers = 2;
  opt.model.hidden_dim = 16;
  opt.epochs = static_cast<uint32_t>(epochs);
  opt.fp_mode = core::FpMode::kReqEc;
  opt.bp_mode = core::BpMode::kResEc;
  opt.exchange.fp_bits = 4;
  opt.exchange.bp_bits = 4;
  return opt;
}

TEST(ChaosTrainingTest, ConvergesUnderModerateChaosWithinEpsilon) {
  const graph::Graph g = TinyGraph();
  auto clean = core::TrainDistributed(g, 3, EcOptions(25));
  ASSERT_TRUE(clean.ok());

  auto inj = FaultInjector::Parse("drop=0.05,corrupt=0.01,dup=0.02,seed=9");
  ASSERT_TRUE(inj.ok());
  ScopedFaultInjector scoped(&*inj);
  auto chaotic = core::TrainDistributed(g, 3, EcOptions(25));
  ASSERT_TRUE(chaotic.ok()) << chaotic.status().ToString();

  // Faults actually happened...
  EXPECT_GT(inj->counters().dropped.load(), 0u);
  EXPECT_GT(inj->counters().corrupted.load(), 0u);
  EXPECT_GT(inj->counters().duplicated.load(), 0u);
  EXPECT_GT(inj->counters().retried.load(), 0u);
  // ...and the run still converges within epsilon of the fault-free one.
  EXPECT_GT(chaotic->best_val_acc, 0.85);
  EXPECT_NEAR(chaotic->best_val_acc, clean->best_val_acc, 0.1);
}

TEST(ChaosTrainingTest, TargetedBlackoutDegradesGracefully) {
  const graph::Graph g = TinyGraph();
  // Sever the 0<->1 link completely during epoch 2: every retry fails, so
  // FP falls back to prediction/stale rows and BP folds the loss into the
  // ResEC residual.
  auto inj = FaultInjector::Parse(
      "drop=1@epoch=2:from=0:to=1;drop=1@epoch=2:from=1:to=0");
  ASSERT_TRUE(inj.ok());
  ScopedFaultInjector scoped(&*inj);
  auto r = core::TrainDistributed(g, 3, EcOptions(25));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->epochs.size(), 25u);

  const auto& c = inj->counters();
  EXPECT_GT(c.lost.load(), 0u);
  EXPECT_GT(c.degraded_pdt.load() + c.degraded_stale.load(), 0u);
  EXPECT_GT(c.degraded_resec.load(), 0u);
  // One blacked-out epoch must not wreck convergence.
  EXPECT_GT(r->best_val_acc, 0.8);
}

TEST(ChaosTrainingTest, ExactModesAlsoDegradeInsteadOfFailing) {
  const graph::Graph g = TinyGraph();
  auto inj = FaultInjector::Parse("drop=1@epoch=1:from=2:to=0");
  ASSERT_TRUE(inj.ok());
  ScopedFaultInjector scoped(&*inj);
  TrainOptions opt;
  opt.model.num_layers = 2;
  opt.model.hidden_dim = 16;
  opt.epochs = 8;
  auto r = core::TrainDistributed(g, 3, opt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(inj->counters().lost.load(), 0u);
  EXPECT_GT(inj->counters().degraded_stale.load(), 0u);
}

TEST(ChaosTrainingTest, CrashRestoresFromCheckpointDeterministically) {
  const graph::Graph g = TinyGraph();
  auto clean = core::TrainDistributed(g, 2, EcOptions(10));
  ASSERT_TRUE(clean.ok());

  auto inj = FaultInjector::Parse("crash@epoch=4:worker=1,restart=0.5");
  ASSERT_TRUE(inj.ok());
  ScopedFaultInjector scoped(&*inj);
  auto crashed = core::TrainDistributed(g, 2, EcOptions(10));
  ASSERT_TRUE(crashed.ok()) << crashed.status().ToString();

  const auto& c = inj->counters();
  EXPECT_EQ(c.crashes.load(), 1u);
  EXPECT_EQ(c.restores.load(), 1u);
  EXPECT_GT(c.checkpoints.load(), 0u);

  // The restore rewinds model, optimizer, and compensation state to the
  // epoch boundary, so the re-run reproduces the fault-free curve exactly.
  ASSERT_EQ(crashed->epochs.size(), clean->epochs.size());
  for (size_t e = 0; e < clean->epochs.size(); ++e) {
    EXPECT_NEAR(crashed->epochs[e].loss, clean->epochs[e].loss, 1e-12)
        << "epoch " << e;
    EXPECT_DOUBLE_EQ(crashed->epochs[e].val_acc, clean->epochs[e].val_acc);
    EXPECT_DOUBLE_EQ(crashed->epochs[e].test_acc,
                     clean->epochs[e].test_acc);
  }
  // The crash costs simulated time (restart downtime + redone epochs).
  EXPECT_GT(crashed->total_sim_seconds, clean->total_sim_seconds);
}

TEST(ChaosTrainingTest, PeriodicCheckpointsMirrorToDisk) {
  const graph::Graph g = TinyGraph();
  TrainOptions opt = EcOptions(10);
  opt.checkpoint_every = 2;
  opt.checkpoint_dir = ::testing::TempDir();
  auto r = core::TrainDistributed(g, 3, opt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  CheckpointStore loaded(3);
  const std::string path = opt.checkpoint_dir + "/checkpoint_latest.bin";
  ASSERT_TRUE(loaded.LoadFromFile(path).ok());
  // Periodic checkpoints at 2,4,6,8 (never at the final epoch boundary):
  // the last mirror resumes at epoch 8.
  EXPECT_EQ(loaded.next_epoch(), 8u);
  EXPECT_FALSE(loaded.global().empty());
  // ReqEC/ResEC state sections are non-empty for every worker.
  for (uint32_t w = 0; w < 3; ++w) {
    EXPECT_FALSE(loaded.worker_blob(w).empty()) << "worker " << w;
  }
  std::remove(path.c_str());
}

TEST(ChaosTrainingTest, CrashWithLinkFaultsStillConverges) {
  const graph::Graph g = TinyGraph();
  auto inj = FaultInjector::Parse(
      "drop=0.03,seed=5,restart=0.1;crash@epoch=3:worker=0");
  ASSERT_TRUE(inj.ok());
  ScopedFaultInjector scoped(&*inj);
  auto r = core::TrainDistributed(g, 3, EcOptions(20));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(inj->counters().crashes.load(), 1u);
  EXPECT_EQ(inj->counters().restores.load(), 1u);
  EXPECT_GT(r->best_val_acc, 0.85);
}

}  // namespace
}  // namespace ecg
