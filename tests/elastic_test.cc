#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/trace_report.h"
#include "core/exchange.h"
#include "core/halo.h"
#include "core/trainer.h"
#include "dist/cluster.h"
#include "dist/elastic.h"
#include "dist/fault.h"
#include "dist/network_model.h"
#include "dist/param_server.h"
#include "graph/datasets.h"
#include "graph/partition.h"
#include "tensor/matrix.h"

namespace ecg {
namespace {

using core::TrainOptions;
using dist::FaultInjector;
using dist::ScopedFaultInjector;
using elastic::ElasticOptions;
using elastic::ElasticStateBag;
using tensor::Matrix;

// ---------------------------------------------------------------------
// --elastic=SPEC grammar.

TEST(ElasticSpecTest, EmptySpecIsInactive) {
  auto r = ElasticOptions::Parse("");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->active);
  EXPECT_TRUE(r->events.empty());
}

TEST(ElasticSpecTest, ParsesFullGrammar) {
  auto r = ElasticOptions::Parse(
      "join@epoch=9,leave@epoch=4:worker=1;on_crash=replace,rebalance=on,"
      "ewma=0.5,threshold=1.3,hysteresis=2,budget=0.5,cooldown=4,"
      "downtime=0.25,cap=1.5,max_imbalance=1.2,seed=17");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->active);
  ASSERT_EQ(r->events.size(), 2u);
  // Events come out sorted by epoch regardless of spec order.
  EXPECT_EQ(r->events[0].epoch, 4u);
  EXPECT_FALSE(r->events[0].join);
  EXPECT_EQ(r->events[0].worker, 1u);
  EXPECT_EQ(r->events[1].epoch, 9u);
  EXPECT_TRUE(r->events[1].join);
  EXPECT_EQ(r->on_crash, elastic::OnCrash::kReplace);
  EXPECT_TRUE(r->rebalance);
  EXPECT_DOUBLE_EQ(r->ewma, 0.5);
  EXPECT_DOUBLE_EQ(r->threshold, 1.3);
  EXPECT_EQ(r->hysteresis, 2u);
  EXPECT_DOUBLE_EQ(r->budget, 0.5);
  EXPECT_EQ(r->cooldown, 4u);
  EXPECT_DOUBLE_EQ(r->downtime_seconds, 0.25);
  EXPECT_DOUBLE_EQ(r->cap, 1.5);
  EXPECT_DOUBLE_EQ(r->max_imbalance, 1.2);
  EXPECT_EQ(r->seed, 17u);
}

TEST(ElasticSpecTest, RejectsMalformedSpecs) {
  const char* bad[] = {
      "leave@epoch=0:worker=1",           // epoch 0 has no prior state
      "leave@epoch=3",                    // leave needs worker=
      "join@epoch=3:worker=1",            // join takes no worker=
      "leave@worker=1",                   // missing epoch
      "bogus=1",                          // unknown key
      "threshold=1.0",                    // must exceed 1.0
      "budget=0",                         // must be in (0, 1]
      "ewma=1.5",                         // must be in (0, 1]
      "max_imbalance=0.9",                // must be >= 1.0
      "cap=0.5",                          // must be >= 1.0
      "rebalance=maybe",                  // on|off only
      "on_crash=explode",                 // shrink|replace|restore only
      "leave@epoch=3:worker=0,join@epoch=3",  // two events, one epoch
  };
  for (const char* spec : bad) {
    auto r = ElasticOptions::Parse(spec);
    EXPECT_FALSE(r.ok()) << "spec accepted: " << spec;
  }
}

// ---------------------------------------------------------------------
// Partitioner: unified imbalance default, capacities, delta-repartition.

graph::Graph TinyGraph() { return *graph::LoadDataset("tiny"); }

TEST(ElasticPartitionTest, MaxImbalanceDefaultIsUnified) {
  EXPECT_DOUBLE_EQ(graph::MetisLikeOptions().max_imbalance,
                   graph::kDefaultMaxImbalance);
  EXPECT_DOUBLE_EQ(graph::StreamingOptions().max_imbalance,
                   graph::kDefaultMaxImbalance);
  EXPECT_DOUBLE_EQ(graph::DeltaRepartitionOptions().max_imbalance,
                   graph::kDefaultMaxImbalance);
  EXPECT_DOUBLE_EQ(ElasticOptions().max_imbalance,
                   graph::kDefaultMaxImbalance);

  const graph::Graph g = TinyGraph();
  graph::StreamingOptions so;
  so.max_imbalance = 0.99;
  EXPECT_FALSE(graph::StreamingPartition(g, 3, so).ok());
  graph::MetisLikeOptions mo;
  mo.max_imbalance = 0.99;
  EXPECT_FALSE(graph::MetisLikePartition(g, 3, mo).ok());
}

TEST(ElasticPartitionTest, EqualCapacitiesMatchDefaultStreamingBitwise) {
  const graph::Graph g = TinyGraph();
  auto plain = graph::StreamingPartition(g, 3);
  ASSERT_TRUE(plain.ok());
  graph::StreamingOptions so;
  so.part_capacity = {1.0, 1.0, 1.0};
  auto weighted = graph::StreamingPartition(g, 3, so);
  ASSERT_TRUE(weighted.ok());
  EXPECT_EQ(plain->owner, weighted->owner);
}

TEST(ElasticPartitionTest, SkewedCapacityShrinksTheSlowPart) {
  const graph::Graph g = TinyGraph();
  graph::StreamingOptions so;
  so.part_capacity = {1.0, 1.0, 0.5};  // part 2 models a 2x-slow worker
  auto p = graph::StreamingPartition(g, 3, so);
  ASSERT_TRUE(p.ok());
  const size_t slow = p->members[2].size();
  EXPECT_LT(slow, p->members[0].size());
  EXPECT_LT(slow, p->members[1].size());

  graph::StreamingOptions bad;
  bad.part_capacity = {1.0, 1.0};  // size != num_parts
  EXPECT_FALSE(graph::StreamingPartition(g, 3, bad).ok());
  bad.part_capacity = {1.0, 1.0, 0.0};  // non-positive entry
  EXPECT_FALSE(graph::StreamingPartition(g, 3, bad).ok());
}

TEST(ElasticPartitionTest, DeltaRepartitionShrinkKeepsSurvivorsPut) {
  const graph::Graph g = TinyGraph();
  auto base = graph::StreamingPartition(g, 3);
  ASSERT_TRUE(base.ok());
  const std::vector<int32_t> old_to_new = {0, -1, 1};  // worker 1 departs
  auto next = graph::DeltaRepartition(g, *base, old_to_new, 2);
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  EXPECT_EQ(next->num_parts, 2u);
  uint64_t moved = 0;
  for (uint32_t v = 0; v < g.num_vertices(); ++v) {
    ASSERT_LT(next->owner[v], 2u);
    if (base->owner[v] == 0) {
      EXPECT_EQ(next->owner[v], 0u) << "survivor vertex " << v << " moved";
    } else if (base->owner[v] == 2) {
      EXPECT_EQ(next->owner[v], 1u) << "survivor vertex " << v << " moved";
    } else {
      ++moved;
    }
  }
  EXPECT_EQ(moved, base->members[1].size());
  EXPECT_EQ(moved, elastic::CountMovedRows(*base, old_to_new, *next));

  // Deterministic: same inputs, same assignment.
  auto again = graph::DeltaRepartition(g, *base, old_to_new, 2);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(next->owner, again->owner);
}

TEST(ElasticPartitionTest, DeltaRepartitionJoinFillsTheFreshPart) {
  const graph::Graph g = TinyGraph();
  auto base = graph::StreamingPartition(g, 3);
  ASSERT_TRUE(base.ok());
  const std::vector<int32_t> identity = {0, 1, 2};
  auto next = graph::DeltaRepartition(g, *base, identity, 4);
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  EXPECT_EQ(next->num_parts, 4u);
  EXPECT_FALSE(next->members[3].empty());
  // Only the shed overage moves — a delta pass, not a reshuffle.
  const uint64_t moved = elastic::CountMovedRows(*base, identity, *next);
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, g.num_vertices() / 2);
}

TEST(ElasticPartitionTest, CountMovedRowsTreatsDepartedAsMoved) {
  graph::Partition base;
  base.num_parts = 3;
  base.owner = {0, 0, 1, 1, 2, 2};
  graph::RebuildMembers(&base);
  graph::Partition next;
  next.num_parts = 2;
  next.owner = {0, 0, 0, 1, 1, 1};
  graph::RebuildMembers(&next);
  // Old part 1 departed: v2/v3 count as moved wherever they land; v4/v5
  // map 2 -> 1 and stayed; v0/v1 stayed on part 0.
  EXPECT_EQ(elastic::CountMovedRows(base, {0, -1, 1}, next), 2u);
}

// ---------------------------------------------------------------------
// Straggler rebalancer: EWMA scoring, hysteresis, cooldown.

TEST(RebalancerTest, HysteresisDelaysAndCooldownSpacesTriggers) {
  ElasticOptions opts;
  opts.ewma = 1.0;  // raw per-epoch values, no smoothing
  opts.threshold = 1.5;
  opts.hysteresis = 2;
  opts.cooldown = 3;
  elastic::Rebalancer reb;
  reb.Configure(opts, 3);

  auto epoch_with_straggler = [&](uint32_t epoch) {
    reb.Deposit(0, 1.0);
    reb.Deposit(1, 1.0);
    reb.Deposit(2, 3.0);  // score = 3.0 / median 1.0 = 3.0
    return reb.EndEpoch(epoch);
  };

  EXPECT_EQ(epoch_with_straggler(0), -1);  // streak 1 < hysteresis
  EXPECT_EQ(epoch_with_straggler(1), 2);   // streak 2 -> trigger
  EXPECT_EQ(epoch_with_straggler(2), -1);  // streak restarts after trigger
  EXPECT_EQ(epoch_with_straggler(3), -1);  // streak 2 but cooling down
  EXPECT_EQ(epoch_with_straggler(4), 2);   // epoch 1 + cooldown 3 elapsed
}

TEST(RebalancerTest, BalancedLoadNeverTriggers) {
  ElasticOptions opts;
  opts.ewma = 1.0;
  opts.threshold = 1.5;
  opts.hysteresis = 1;
  elastic::Rebalancer reb;
  reb.Configure(opts, 3);
  for (uint32_t e = 0; e < 10; ++e) {
    reb.Deposit(0, 1.0);
    reb.Deposit(1, 1.1);
    reb.Deposit(2, 0.9);
    EXPECT_EQ(reb.EndEpoch(e), -1) << "epoch " << e;
  }
}

TEST(RebalancerTest, MembershipChangeResetsHistory) {
  ElasticOptions opts;
  opts.ewma = 1.0;
  opts.threshold = 1.5;
  opts.hysteresis = 1;
  opts.cooldown = 2;
  elastic::Rebalancer reb;
  reb.Configure(opts, 3);
  reb.Deposit(0, 1.0);
  reb.Deposit(1, 1.0);
  reb.Deposit(2, 3.0);
  EXPECT_EQ(reb.EndEpoch(0), 2);  // hysteresis 1 triggers immediately
  reb.OnMembershipChange(1, 2);   // shrink to 2 workers
  // Fresh membership: scores start over and the change itself cools down.
  reb.Deposit(0, 1.0);
  reb.Deposit(1, 3.0);
  EXPECT_EQ(reb.EndEpoch(1), -1);  // within cooldown of the change
  reb.Deposit(0, 1.0);
  reb.Deposit(1, 3.0);
  EXPECT_EQ(reb.EndEpoch(2), -1);
  reb.Deposit(0, 1.0);
  reb.Deposit(1, 3.0);
  EXPECT_EQ(reb.EndEpoch(3), 1);

  // Degenerate memberships never trigger.
  reb.Configure(opts, 1);
  reb.Deposit(0, 5.0);
  EXPECT_EQ(reb.EndEpoch(0), -1);
}

// ---------------------------------------------------------------------
// Elastic state bag.

TEST(ElasticStateBagTest, RemapDropsDepartedWorkersAndRewritesIds) {
  ElasticStateBag bag;
  bag.fp_trend[{uint16_t{0}, 5u}] = {{1.0f}, {2.0f}};
  bag.bp_residual[{uint16_t{0}, 7u, 1u}] = {0.5f};  // receiver departs
  bag.bp_residual[{uint16_t{0}, 8u, 2u}] = {0.25f};
  bag.request_bits[{0u, 1u}] = 4;   // responder departs -> dropped
  bag.request_bits[{1u, 2u}] = 6;   // requester departs -> dropped
  bag.request_bits[{2u, 0u}] = 8;   // survives as (1, 0)
  bag.proportion[{2u, 0u}] = 0.75f;

  bag.RemapWorkers({0, -1, 1});

  // Vertex-keyed trend rows are worker-independent and survive untouched.
  ASSERT_EQ(bag.fp_trend.size(), 1u);
  EXPECT_EQ(bag.fp_trend.begin()->second.h, std::vector<float>{1.0f});

  ASSERT_EQ(bag.bp_residual.size(), 1u);
  const auto& [res_key, res_row] = *bag.bp_residual.begin();
  EXPECT_EQ(std::get<1>(res_key), 8u);
  EXPECT_EQ(std::get<2>(res_key), 1u);  // receiver 2 renumbered to 1
  EXPECT_EQ(res_row, std::vector<float>{0.25f});

  ASSERT_EQ(bag.request_bits.size(), 1u);
  EXPECT_EQ(bag.request_bits.begin()->first, std::make_pair(1u, 0u));
  EXPECT_EQ(bag.request_bits.begin()->second, 8);
  ASSERT_EQ(bag.proportion.size(), 1u);
  EXPECT_EQ(bag.proportion.begin()->first, std::make_pair(1u, 0u));
}

void ExpectBagsEqual(const ElasticStateBag& a, const ElasticStateBag& b) {
  ASSERT_EQ(a.fp_trend.size(), b.fp_trend.size());
  for (const auto& [key, row] : a.fp_trend) {
    auto it = b.fp_trend.find(key);
    ASSERT_NE(it, b.fp_trend.end())
        << "trend (layer " << key.first << ", v " << key.second << ") lost";
    EXPECT_EQ(row.h, it->second.h);
    EXPECT_EQ(row.m, it->second.m);
  }
  EXPECT_EQ(a.bp_residual, b.bp_residual);
  EXPECT_EQ(a.request_bits, b.request_bits);
  EXPECT_EQ(a.proportion, b.proportion);
}

/// Property test: exporting the exchangers' compensation state to a bag,
/// remapping, and importing into fresh exchangers is lossless — the
/// re-exported bag is bit-identical. This is what makes a migrated vertex
/// keep its ReqEC trend baseline and ResEC residual across a transition.
TEST(ElasticStateBagTest, ExchangerStateRoundTripsBitExactly) {
  const graph::Graph g = TinyGraph();
  auto part = graph::StreamingPartition(g, 3);
  ASSERT_TRUE(part.ok());
  std::vector<core::WorkerPlan> plans;
  ASSERT_TRUE(core::BuildWorkerPlans(g, *part, &plans).ok());

  core::ExchangeConfig config;
  config.fp_bits = 4;
  config.bp_bits = 4;
  config.trend_period = 2;
  const uint16_t kLayers = 2;
  const size_t kDim = 6;

  // Run a few real exchange epochs so both exchangers accumulate state.
  std::vector<std::unique_ptr<core::FpExchanger>> fps(3);
  std::vector<std::unique_ptr<core::BpExchanger>> bps(3);
  dist::SimulatedCluster cluster(3, dist::NetworkModel{});
  Status run = cluster.Run([&](dist::WorkerContext* ctx) -> Status {
    const uint32_t w = ctx->worker_id();
    const core::WorkerPlan& plan = plans[w];
    fps[w] = core::MakeFpExchanger(core::FpMode::kReqEc, config, kLayers,
                                   plan);
    bps[w] = core::MakeBpExchanger(core::BpMode::kResEc, config, kLayers,
                                   plan);
    Matrix h(plan.owned.size(), kDim), hh(plan.halo.size(), kDim);
    Matrix gm(plan.owned.size(), kDim), gh(plan.halo.size(), kDim);
    for (uint32_t epoch = 0; epoch < 3; ++epoch) {
      for (uint16_t l = 0; l < kLayers; ++l) {
        for (size_t r = 0; r < plan.owned.size(); ++r) {
          for (size_t j = 0; j < kDim; ++j) {
            h.Row(r)[j] = 0.01f * plan.owned[r] + 0.1f * (l + 1) +
                          0.003f * epoch + 0.02f * j;
            gm.Row(r)[j] = 0.5f * h.Row(r)[j] - 0.01f * j;
          }
        }
        ECG_RETURN_IF_ERROR(fps[w]->Exchange(ctx, plan, epoch, l, h, &hh));
        ECG_RETURN_IF_ERROR(bps[w]->Exchange(
            ctx, plan, epoch, static_cast<uint16_t>(l + 1), gm, &gh));
      }
    }
    return Status::OK();
  });
  ASSERT_TRUE(run.ok()) << run.ToString();

  ElasticStateBag bag;
  for (uint32_t w = 0; w < 3; ++w) {
    fps[w]->ExportElasticState(plans[w], &bag);
    bps[w]->ExportElasticState(plans[w], &bag);
  }
  EXPECT_FALSE(bag.fp_trend.empty());
  EXPECT_FALSE(bag.bp_residual.empty());
  EXPECT_FALSE(bag.request_bits.empty());

  // Identity remap is a no-op.
  ElasticStateBag remapped = bag;
  remapped.RemapWorkers({0, 1, 2});
  ExpectBagsEqual(bag, remapped);

  // Import into fresh exchangers, re-export, and compare bit-for-bit.
  ElasticStateBag round;
  for (uint32_t w = 0; w < 3; ++w) {
    auto fp = core::MakeFpExchanger(core::FpMode::kReqEc, config, kLayers,
                                    plans[w]);
    auto bp = core::MakeBpExchanger(core::BpMode::kResEc, config, kLayers,
                                    plans[w]);
    ASSERT_TRUE(fp->ImportElasticState(plans[w], bag).ok());
    ASSERT_TRUE(bp->ImportElasticState(plans[w], bag).ok());
    fp->ExportElasticState(plans[w], &round);
    bp->ExportElasticState(plans[w], &round);
  }
  ExpectBagsEqual(bag, round);
}

// ---------------------------------------------------------------------
// Parameter-server state across a membership change.

TEST(ElasticStateBagTest, AdamStateSurvivesWorkerCountChangeBitExactly) {
  const std::vector<dist::ParameterServerGroup::LayerShape> shapes = {
      {6, 8}, {8, 3}};
  dist::ParameterServerGroup ps1(shapes, 1, /*num_workers=*/3, 0.01f, 42);
  for (uint32_t w = 0; w < 3; ++w) {
    std::vector<Matrix> dw, db;
    for (const auto& s : shapes) {
      Matrix g(s.in_dim, s.out_dim), b(1, s.out_dim);
      for (size_t i = 0; i < g.rows() * g.cols(); ++i) {
        g.data()[i] = 0.001f * static_cast<float>(i + 1);
      }
      for (size_t i = 0; i < b.cols(); ++i) b.data()[i] = 0.01f;
      dw.push_back(std::move(g));
      db.push_back(std::move(b));
    }
    ps1.Push(w, std::move(dw), std::move(db));  // 3rd push applies Adam
  }
  std::vector<uint8_t> blob1;
  ByteWriter w1(&blob1);
  ps1.SaveTo(&w1);

  // A 2-worker group with different init seed adopts the exact state:
  // weights, biases, and Adam moments are membership-independent.
  dist::ParameterServerGroup ps2(shapes, 1, /*num_workers=*/2, 0.01f, 7);
  ByteReader r(blob1);
  ASSERT_TRUE(ps2.LoadFrom(&r).ok());
  for (size_t l = 0; l < shapes.size(); ++l) {
    ASSERT_EQ(ps2.weight(l).rows(), ps1.weight(l).rows());
    for (size_t i = 0; i < ps1.weight(l).rows() * ps1.weight(l).cols();
         ++i) {
      ASSERT_EQ(ps2.weight(l).data()[i], ps1.weight(l).data()[i])
          << "layer " << l << " element " << i;
    }
  }
  std::vector<uint8_t> blob2;
  ByteWriter w2(&blob2);
  ps2.SaveTo(&w2);
  EXPECT_EQ(blob1, blob2);
}

// ---------------------------------------------------------------------
// Per-worker compute scaling (straggler model).

TEST(ElasticClusterTest, ComputeScaleMultipliesChargedSeconds) {
  dist::SimulatedCluster cluster(2, dist::NetworkModel{}, dist::MachineModel{},
                                 {1.0, 2.0});
  std::array<double, 2> charged = {0.0, 0.0};
  Status s = cluster.Run([&](dist::WorkerContext* ctx) -> Status {
    ctx->ChargeCompute(0.25);
    charged[ctx->worker_id()] = ctx->compute_seconds();
    return Status::OK();
  });
  ASSERT_TRUE(s.ok());
  EXPECT_GT(charged[0], 0.0);
  EXPECT_DOUBLE_EQ(charged[1], 2.0 * charged[0]);
}

// ---------------------------------------------------------------------
// End-to-end elastic training.

TrainOptions EcOptions(int epochs) {
  TrainOptions opt;
  opt.model.num_layers = 2;
  opt.model.hidden_dim = 16;
  opt.epochs = static_cast<uint32_t>(epochs);
  opt.fp_mode = core::FpMode::kReqEc;
  opt.bp_mode = core::BpMode::kResEc;
  opt.exchange.fp_bits = 4;
  opt.exchange.bp_bits = 4;
  return opt;
}

void ExpectSameCurve(const core::TrainResult& a, const core::TrainResult& b) {
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (size_t e = 0; e < a.epochs.size(); ++e) {
    EXPECT_NEAR(a.epochs[e].loss, b.epochs[e].loss, 1e-12) << "epoch " << e;
    EXPECT_DOUBLE_EQ(a.epochs[e].val_acc, b.epochs[e].val_acc);
    EXPECT_DOUBLE_EQ(a.epochs[e].test_acc, b.epochs[e].test_acc);
  }
}

TEST(ElasticTrainingTest, EmptySpecIsBitIdenticalToFixedMembership) {
  const graph::Graph g = TinyGraph();
  auto plain = core::TrainDistributed(g, 3, EcOptions(8));
  ASSERT_TRUE(plain.ok());

  TrainOptions opt = EcOptions(8);
  opt.elastic = "";
  opt.worker_compute_scale = {1.0, 1.0, 1.0};
  auto elastic_off = core::TrainDistributed(g, 3, opt);
  ASSERT_TRUE(elastic_off.ok()) << elastic_off.status().ToString();
  ExpectSameCurve(*plain, *elastic_off);
}

TEST(ElasticTrainingTest, ScheduledLeaveConvergesAndLogsTheTransition) {
  const graph::Graph g = TinyGraph();
  auto clean = core::TrainDistributed(g, 3, EcOptions(25));
  ASSERT_TRUE(clean.ok());

  TrainOptions opt = EcOptions(25);
  opt.elastic = "leave@epoch=8:worker=1,downtime=0.01";
  auto r = core::TrainDistributed(g, 3, opt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->epochs.size(), 25u);
  EXPECT_NEAR(r->best_val_acc, clean->best_val_acc, 0.1);

  const auto log = elastic::MembershipLog::Global().Snapshot();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].kind, "leave");
  EXPECT_EQ(log[0].epoch, 8u);
  EXPECT_EQ(log[0].worker, 1);
  EXPECT_EQ(log[0].num_workers, 2u);
  EXPECT_GT(log[0].moved_rows, 0u);
  EXPECT_GT(log[0].downtime_seconds, 0.0);
}

TEST(ElasticTrainingTest, ScheduledJoinGrowsTheCluster) {
  const graph::Graph g = TinyGraph();
  auto clean = core::TrainDistributed(g, 3, EcOptions(25));
  ASSERT_TRUE(clean.ok());

  TrainOptions opt = EcOptions(25);
  opt.elastic = "join@epoch=6,downtime=0.01";
  auto r = core::TrainDistributed(g, 3, opt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->epochs.size(), 25u);
  EXPECT_NEAR(r->best_val_acc, clean->best_val_acc, 0.1);

  const auto log = elastic::MembershipLog::Global().Snapshot();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].kind, "join");
  EXPECT_EQ(log[0].num_workers, 4u);
  EXPECT_GT(log[0].moved_rows, 0u);
}

TEST(ElasticTrainingTest, CrashShrinkContinuesOnSurvivors) {
  const graph::Graph g = TinyGraph();
  auto clean = core::TrainDistributed(g, 3, EcOptions(20));
  ASSERT_TRUE(clean.ok());

  auto inj = FaultInjector::Parse("crash@epoch=4:worker=1,restart=0.5");
  ASSERT_TRUE(inj.ok());
  ScopedFaultInjector scoped(&*inj);
  TrainOptions opt = EcOptions(20);
  opt.elastic = "on_crash=shrink,downtime=0.01";
  auto r = core::TrainDistributed(g, 3, opt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->epochs.size(), 20u);
  EXPECT_NEAR(r->best_val_acc, clean->best_val_acc, 0.1);

  EXPECT_EQ(inj->counters().crashes.load(), 1u);
  EXPECT_EQ(inj->counters().crash_detected.load(), 1u);
  EXPECT_EQ(inj->counters().restores.load(), 1u);
  const auto log = elastic::MembershipLog::Global().Snapshot();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].kind, "crash_shrink");
  EXPECT_EQ(log[0].worker, 1);
  EXPECT_EQ(log[0].num_workers, 2u);
  // The crash costs wall-clock: restart downtime + redone work.
  EXPECT_GT(r->total_sim_seconds, clean->total_sim_seconds);
}

TEST(ElasticTrainingTest, CrashReplaceReproducesTheFaultFreeCurve) {
  const graph::Graph g = TinyGraph();
  auto clean = core::TrainDistributed(g, 3, EcOptions(10));
  ASSERT_TRUE(clean.ok());

  auto inj = FaultInjector::Parse("crash@epoch=4:worker=1,restart=0.5");
  ASSERT_TRUE(inj.ok());
  ScopedFaultInjector scoped(&*inj);
  TrainOptions opt = EcOptions(10);
  opt.elastic = "on_crash=replace,downtime=0.01";
  auto r = core::TrainDistributed(g, 3, opt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  // Replace keeps the partition: no rows move, and the standby restores
  // the victim's exact checkpoint state, so the loss curve matches the
  // fault-free run bit-for-bit (same property as the PR-3 restore path).
  const auto log = elastic::MembershipLog::Global().Snapshot();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].kind, "crash_replace");
  EXPECT_EQ(log[0].num_workers, 3u);
  EXPECT_EQ(log[0].moved_rows, 0u);
  ExpectSameCurve(*clean, *r);
  EXPECT_GT(r->total_sim_seconds, clean->total_sim_seconds);
}

// ---------------------------------------------------------------------
// trace-report renders membership activity.

TEST(ElasticTraceReportTest, MembershipRowsFromFlightDump) {
  const std::string dump = R"({"reason":"crash","spans":[],"sections":{
    "elastic_state":{"events":[
      {"epoch":4,"kind":"leave","worker":1,"num_workers":2,
       "moved_rows":37,"downtime_seconds":1.5},
      {"epoch":9,"kind":"rebalance","worker":2,"num_workers":2,
       "moved_rows":12,"downtime_seconds":0.25}]}}})";
  auto report = obs::BuildTraceReport(dump);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->membership.size(), 2u);
  const auto& leave = report->membership.at({1u, "leave"});
  EXPECT_EQ(leave.events, 1u);
  EXPECT_EQ(leave.moved_rows, 37u);
  EXPECT_DOUBLE_EQ(leave.seconds, 1.5);
  const auto& rebal = report->membership.at({2u, "rebalance"});
  EXPECT_EQ(rebal.moved_rows, 12u);

  const std::string text = obs::FormatTraceReport(*report);
  EXPECT_NE(text.find("membership events:"), std::string::npos);
  EXPECT_NE(text.find("leave"), std::string::npos);
  EXPECT_NE(text.find("rebalance"), std::string::npos);
}

TEST(ElasticTraceReportTest, MembershipRowsFromChromeTraceSpans) {
  const std::string trace = R"({"traceEvents":[
    {"ph":"X","cat":"sim","name":"elastic_repartition","ts":0,
     "dur":2000000,"args":{"worker":0}},
    {"ph":"X","cat":"sim","name":"fp_comm","ts":0,"dur":1000,
     "args":{"worker":0}}]})";
  auto report = obs::BuildTraceReport(trace);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->membership.size(), 1u);
  const auto& row = report->membership.at({0u, "elastic_repartition"});
  EXPECT_EQ(row.events, 1u);
  EXPECT_DOUBLE_EQ(row.seconds, 2.0);
  EXPECT_NE(obs::FormatTraceReport(*report).find("membership events:"),
            std::string::npos);
}

}  // namespace
}  // namespace ecg
