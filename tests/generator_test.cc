#include "graph/generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "graph/datasets.h"

namespace ecg::graph {
namespace {

double Homophily(const Graph& g) {
  uint64_t same = 0, total = 0;
  for (uint32_t v = 0; v < g.num_vertices(); ++v) {
    for (uint32_t u : g.Neighbors(v)) {
      if (u > v) {
        ++total;
        same += (g.labels()[u] == g.labels()[v]);
      }
    }
  }
  return total ? static_cast<double>(same) / total : 0.0;
}

SbmConfig BaseConfig() {
  SbmConfig c;
  c.num_vertices = 2000;
  c.num_classes = 5;
  c.avg_degree = 8.0;
  c.feature_dim = 12;
  c.homophily = 0.85;
  c.degree_skew = 0.5;
  c.feature_noise = 1.0;
  c.seed = 9;
  return c;
}

TEST(GeneratorTest, DeterministicGivenSeed) {
  const SbmConfig c = BaseConfig();
  auto g1 = GenerateSbm(c);
  auto g2 = GenerateSbm(c);
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g1->num_edges(), g2->num_edges());
  EXPECT_EQ(g1->labels(), g2->labels());
  EXPECT_TRUE(tensor::AllClose(g1->features(), g2->features()));
}

TEST(GeneratorTest, MatchesRequestedSize) {
  const SbmConfig c = BaseConfig();
  auto g = GenerateSbm(c);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), c.num_vertices);
  // Dedup loses a little; degree within 15% of target.
  EXPECT_NEAR(g->average_degree(), c.avg_degree, c.avg_degree * 0.15);
  EXPECT_EQ(g->feature_dim(), c.feature_dim);
  EXPECT_EQ(g->num_classes(), c.num_classes);
}

TEST(GeneratorTest, HomophilyControlsSameClassEdges) {
  SbmConfig hi = BaseConfig();
  hi.homophily = 0.9;
  SbmConfig lo = BaseConfig();
  lo.homophily = 0.2;
  auto gh = GenerateSbm(hi);
  auto gl = GenerateSbm(lo);
  ASSERT_TRUE(gh.ok());
  ASSERT_TRUE(gl.ok());
  EXPECT_GT(Homophily(*gh), Homophily(*gl) + 0.3);
}

TEST(GeneratorTest, DegreeSkewProducesHeavyTail) {
  SbmConfig uniform = BaseConfig();
  uniform.degree_skew = 0.0;
  SbmConfig skewed = BaseConfig();
  skewed.degree_skew = 1.2;
  auto gu = GenerateSbm(uniform);
  auto gs = GenerateSbm(skewed);
  ASSERT_TRUE(gu.ok());
  ASSERT_TRUE(gs.ok());
  auto max_degree = [](const Graph& g) {
    uint32_t mx = 0;
    for (uint32_t v = 0; v < g.num_vertices(); ++v) {
      mx = std::max(mx, g.Degree(v));
    }
    return mx;
  };
  EXPECT_GT(max_degree(*gs), 2 * max_degree(*gu));
}

TEST(GeneratorTest, LabelNoiseChangesRoughlyRequestedFraction) {
  SbmConfig clean = BaseConfig();
  SbmConfig noisy = BaseConfig();
  noisy.label_noise = 0.3;
  auto gc = GenerateSbm(clean);
  auto gn = GenerateSbm(noisy);
  ASSERT_TRUE(gc.ok());
  ASSERT_TRUE(gn.ok());
  // Same seed => same underlying communities; count label differences.
  // A resampled label equals the original with prob 1/C, so expected
  // difference rate = noise * (1 - 1/C).
  uint32_t diff = 0;
  for (uint32_t v = 0; v < gc->num_vertices(); ++v) {
    diff += (gc->labels()[v] != gn->labels()[v]);
  }
  const double rate = static_cast<double>(diff) / gc->num_vertices();
  EXPECT_NEAR(rate, 0.3 * (1.0 - 1.0 / 5), 0.04);
}

TEST(GeneratorTest, RejectsBadConfigs) {
  SbmConfig c = BaseConfig();
  c.homophily = 1.5;
  EXPECT_FALSE(GenerateSbm(c).ok());
  c = BaseConfig();
  c.num_vertices = 0;
  EXPECT_FALSE(GenerateSbm(c).ok());
}

TEST(GeneratorTest, AssignSplitsDisjointAndSized) {
  auto g = GenerateSbm(BaseConfig());
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(AssignSplits(&*g, 100, 50, 25, 3).ok());
  EXPECT_EQ(g->train_set().size(), 100u);
  EXPECT_EQ(g->val_set().size(), 50u);
  EXPECT_EQ(g->test_set().size(), 25u);
  std::set<uint32_t> seen;
  for (auto v : g->train_set()) seen.insert(v);
  for (auto v : g->val_set()) seen.insert(v);
  for (auto v : g->test_set()) seen.insert(v);
  EXPECT_EQ(seen.size(), 175u);  // disjoint
}

TEST(GeneratorTest, AssignSplitsRejectsOversize) {
  auto g = GenerateSbm(BaseConfig());
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(AssignSplits(&*g, 1500, 400, 200, 3).ok());
}

TEST(DatasetsTest, RegistryHasAllTableIIIReplicas) {
  const auto names = DatasetNames();
  for (const char* expected :
       {"tiny", "cora-sim", "pubmed-sim", "reddit-sim", "products-sim",
        "papers-sim"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  EXPECT_FALSE(GetDatasetSpec("unknown").ok());
}

TEST(DatasetsTest, CoraReplicaMatchesPublishedShape) {
  auto spec = GetDatasetSpec("cora-sim");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->sbm.num_vertices, 2708u);
  EXPECT_EQ(spec->sbm.feature_dim, 1433u);
  EXPECT_EQ(spec->sbm.num_classes, 7);
  EXPECT_NEAR(spec->sbm.avg_degree, 3.90, 1e-9);
  EXPECT_EQ(spec->train_size, 1408u);
  EXPECT_EQ(spec->val_size, 300u);
  EXPECT_EQ(spec->test_size, 1000u);
}

TEST(DatasetsTest, LoadInstallsSplits) {
  auto g = LoadDataset("tiny");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->name, "tiny");
  EXPECT_EQ(g->train_set().size(), 128u);
  EXPECT_EQ(g->val_set().size(), 32u);
  EXPECT_EQ(g->test_set().size(), 64u);
}

}  // namespace
}  // namespace ecg::graph
