#include "common/bytes.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace ecg {
namespace {

TEST(BytesTest, ScalarRoundTrip) {
  std::vector<uint8_t> buf;
  ByteWriter w(&buf);
  w.PutU8(7);
  w.PutU32(0xdeadbeefu);
  w.PutU64(0x0123456789abcdefULL);
  w.PutF32(3.25f);

  ByteReader r(buf);
  uint8_t a = 0;
  uint32_t b = 0;
  uint64_t c = 0;
  float d = 0;
  ASSERT_TRUE(r.GetU8(&a).ok());
  ASSERT_TRUE(r.GetU32(&b).ok());
  ASSERT_TRUE(r.GetU64(&c).ok());
  ASSERT_TRUE(r.GetF32(&d).ok());
  EXPECT_EQ(a, 7);
  EXPECT_EQ(b, 0xdeadbeefu);
  EXPECT_EQ(c, 0x0123456789abcdefULL);
  EXPECT_EQ(d, 3.25f);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BytesTest, VectorRoundTrip) {
  std::vector<uint8_t> buf;
  ByteWriter w(&buf);
  const std::vector<uint32_t> u32s = {1, 2, 3, 0xffffffffu};
  const std::vector<float> f32s = {-1.5f, 0.0f, 2.5f};
  const std::vector<uint8_t> bytes = {9, 8, 7};
  w.PutU32Vector(u32s);
  w.PutF32Vector(f32s);
  w.PutBytes(bytes);

  ByteReader r(buf);
  std::vector<uint32_t> u32s2;
  std::vector<float> f32s2;
  std::vector<uint8_t> bytes2;
  ASSERT_TRUE(r.GetU32Vector(&u32s2).ok());
  ASSERT_TRUE(r.GetF32Vector(&f32s2).ok());
  ASSERT_TRUE(r.GetBytes(&bytes2).ok());
  EXPECT_EQ(u32s2, u32s);
  EXPECT_EQ(f32s2, f32s);
  EXPECT_EQ(bytes2, bytes);
}

TEST(BytesTest, F32ArrayRoundTrip) {
  std::vector<uint8_t> buf;
  ByteWriter w(&buf);
  const float values[4] = {1.0f, -2.0f, 3.5f, 1e-8f};
  w.PutF32Array(values, 4);
  ByteReader r(buf);
  float out[4] = {};
  ASSERT_TRUE(r.GetF32Array(out, 4).ok());
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], values[i]);
}

TEST(BytesTest, ReadPastEndFails) {
  std::vector<uint8_t> buf;
  ByteWriter w(&buf);
  w.PutU8(1);
  ByteReader r(buf);
  uint32_t v = 0;
  EXPECT_EQ(r.GetU32(&v).code(), StatusCode::kOutOfRange);
}

TEST(BytesTest, CorruptLengthPrefixFails) {
  std::vector<uint8_t> buf;
  ByteWriter w(&buf);
  w.PutU64(1u << 30);  // claims a huge vector, no payload
  ByteReader r(buf);
  std::vector<uint32_t> v;
  EXPECT_EQ(r.GetU32Vector(&v).code(), StatusCode::kOutOfRange);
  std::vector<float> f;
  ByteReader r2(buf);
  EXPECT_EQ(r2.GetF32Vector(&f).code(), StatusCode::kOutOfRange);
  std::vector<uint8_t> b;
  ByteReader r3(buf);
  EXPECT_EQ(r3.GetBytes(&b).code(), StatusCode::kOutOfRange);
}

TEST(BytesTest, EmptyVectors) {
  std::vector<uint8_t> buf;
  ByteWriter w(&buf);
  w.PutU32Vector({});
  w.PutF32Vector({});
  ByteReader r(buf);
  std::vector<uint32_t> u;
  std::vector<float> f;
  ASSERT_TRUE(r.GetU32Vector(&u).ok());
  ASSERT_TRUE(r.GetF32Vector(&f).ok());
  EXPECT_TRUE(u.empty());
  EXPECT_TRUE(f.empty());
}

}  // namespace
}  // namespace ecg
