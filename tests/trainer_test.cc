#include "core/trainer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "baselines/single_machine.h"
#include "common/random.h"
#include "graph/datasets.h"
#include "graph/partition.h"
#include "tensor/nn.h"

namespace ecg::core {
namespace {

using tensor::Matrix;

graph::Graph TinyGraph() { return *graph::LoadDataset("tiny"); }

TrainOptions BaseOptions(int epochs) {
  TrainOptions opt;
  opt.model.num_layers = 2;
  opt.model.hidden_dim = 16;
  opt.epochs = static_cast<uint32_t>(epochs);
  return opt;
}

TEST(GcnConfigTest, LayerShapesChainDimensions) {
  GcnConfig c;
  c.num_layers = 3;
  c.hidden_dim = 8;
  const auto shapes = GcnLayerShapes(c, 100, 5);
  ASSERT_EQ(shapes.size(), 3u);
  EXPECT_EQ(shapes[0].in_dim, 100u);
  EXPECT_EQ(shapes[0].out_dim, 8u);
  EXPECT_EQ(shapes[1].in_dim, 8u);
  EXPECT_EQ(shapes[1].out_dim, 8u);
  EXPECT_EQ(shapes[2].in_dim, 8u);
  EXPECT_EQ(shapes[2].out_dim, 5u);
}

TEST(GradientCheckTest, AnalyticMatchesNumericalOnFullGcn) {
  // End-to-end check of Eqs. 4-6: perturb every parameter of a small
  // 2-layer GCN and compare dLoss/dW against central differences.
  graph::SbmConfig cfg;
  cfg.num_vertices = 24;
  cfg.num_classes = 3;
  cfg.avg_degree = 4.0;
  cfg.feature_dim = 5;
  cfg.seed = 4;
  graph::Graph g = *graph::GenerateSbm(cfg);
  ASSERT_TRUE(graph::AssignSplits(&g, 12, 6, 6, 2).ok());

  Rng rng(1234);
  std::vector<Matrix> w = {Matrix(5, 4), Matrix(4, 3)};
  std::vector<Matrix> b = {Matrix(1, 4), Matrix(1, 3)};
  for (auto& m : w) tensor::XavierInit(&m, &rng);
  for (auto& m : b) tensor::XavierInit(&m, &rng);

  auto grads = baselines::ComputeFullBatchGradients(g, w, b);
  ASSERT_TRUE(grads.ok());

  const double eps = 1e-2;
  auto loss_at = [&](const std::vector<Matrix>& wp,
                     const std::vector<Matrix>& bp) {
    return baselines::ComputeFullBatchGradients(g, wp, bp)->loss;
  };
  for (size_t layer = 0; layer < w.size(); ++layer) {
    for (size_t i = 0; i < w[layer].size(); ++i) {
      auto wp = w;
      wp[layer].data()[i] += static_cast<float>(eps);
      auto wm = w;
      wm[layer].data()[i] -= static_cast<float>(eps);
      const double numeric = (loss_at(wp, b) - loss_at(wm, b)) / (2 * eps);
      EXPECT_NEAR(grads->dw[layer].data()[i], numeric, 2e-2)
          << "W[" << layer << "][" << i << "]";
    }
    for (size_t i = 0; i < b[layer].size(); ++i) {
      auto bp = b;
      bp[layer].data()[i] += static_cast<float>(eps);
      auto bm = b;
      bm[layer].data()[i] -= static_cast<float>(eps);
      const double numeric = (loss_at(w, bp) - loss_at(w, bm)) / (2 * eps);
      EXPECT_NEAR(grads->db[layer].data()[i], numeric, 2e-2)
          << "b[" << layer << "][" << i << "]";
    }
  }
}

/// The load-bearing integration property: N-worker EC-Graph with
/// compression off must reproduce the single-machine reference exactly
/// (same losses, same accuracies, same epoch count) for any worker count
/// and partitioner.
class DistributedEquivalence : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DistributedEquivalence, NonCpMatchesSingleMachine) {
  const uint32_t workers = GetParam();
  const graph::Graph g = TinyGraph();

  baselines::SingleMachineOptions sopt;
  sopt.model.num_layers = 2;
  sopt.model.hidden_dim = 16;
  sopt.epochs = 12;
  auto single = baselines::TrainSingleMachine(g, sopt);
  ASSERT_TRUE(single.ok());

  TrainOptions dopt = BaseOptions(12);
  auto dist = TrainDistributed(g, workers, dopt);
  ASSERT_TRUE(dist.ok());

  ASSERT_EQ(single->epochs.size(), dist->epochs.size());
  for (size_t e = 0; e < single->epochs.size(); ++e) {
    EXPECT_NEAR(single->epochs[e].loss, dist->epochs[e].loss, 1e-4)
        << "epoch " << e << " workers " << workers;
    EXPECT_DOUBLE_EQ(single->epochs[e].train_acc, dist->epochs[e].train_acc);
    EXPECT_DOUBLE_EQ(single->epochs[e].val_acc, dist->epochs[e].val_acc);
    EXPECT_DOUBLE_EQ(single->epochs[e].test_acc, dist->epochs[e].test_acc);
  }
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, DistributedEquivalence,
                         ::testing::Values(1, 2, 3, 5));

TEST(TrainerTest, MetisPartitionGivesSameResultsAsHash) {
  const graph::Graph g = TinyGraph();
  TrainOptions opt = BaseOptions(10);

  auto hash_part = graph::HashPartition(g, 3);
  ASSERT_TRUE(hash_part.ok());
  DistributedTrainer t1(g, *hash_part, opt);
  auto r1 = t1.Train();
  ASSERT_TRUE(r1.ok());

  auto metis_part = graph::MetisLikePartition(g, 3);
  ASSERT_TRUE(metis_part.ok());
  DistributedTrainer t2(g, *metis_part, opt);
  auto r2 = t2.Train();
  ASSERT_TRUE(r2.ok());

  // Same math, different layout: losses agree to float tolerance and the
  // better partitioner moves strictly fewer bytes.
  ASSERT_EQ(r1->epochs.size(), r2->epochs.size());
  for (size_t e = 0; e < r1->epochs.size(); ++e) {
    EXPECT_NEAR(r1->epochs[e].loss, r2->epochs[e].loss, 1e-3);
  }
  EXPECT_LT(r2->total_comm_bytes, r1->total_comm_bytes);
}

TEST(TrainerTest, CompressionReducesBytesAndStillLearns) {
  const graph::Graph g = TinyGraph();

  TrainOptions exact = BaseOptions(25);
  auto r_exact = TrainDistributed(g, 3, exact);
  ASSERT_TRUE(r_exact.ok());

  TrainOptions compressed = BaseOptions(25);
  compressed.fp_mode = FpMode::kCompressed;
  compressed.bp_mode = BpMode::kCompressed;
  compressed.exchange.fp_bits = 4;
  compressed.exchange.bp_bits = 4;
  auto r_cp = TrainDistributed(g, 3, compressed);
  ASSERT_TRUE(r_cp.ok());

  TrainOptions ec = compressed;
  ec.fp_mode = FpMode::kReqEc;
  ec.bp_mode = BpMode::kResEc;
  auto r_ec = TrainDistributed(g, 3, ec);
  ASSERT_TRUE(r_ec.ok());

  EXPECT_LT(r_cp->total_comm_bytes, r_exact->total_comm_bytes / 4);
  EXPECT_LT(r_ec->total_comm_bytes, r_exact->total_comm_bytes / 2);
  // All three reach high accuracy on the easy tiny dataset.
  EXPECT_GT(r_exact->best_val_acc, 0.9);
  EXPECT_GT(r_cp->best_val_acc, 0.85);
  EXPECT_GT(r_ec->best_val_acc, 0.9);
}

TEST(TrainerTest, DelayedModeTradesFreshnessForBytes) {
  const graph::Graph g = TinyGraph();
  TrainOptions exact = BaseOptions(20);
  auto r_exact = TrainDistributed(g, 3, exact);
  ASSERT_TRUE(r_exact.ok());

  TrainOptions delayed = BaseOptions(20);
  delayed.fp_mode = FpMode::kDelayed;
  delayed.exchange.delay_rounds = 5;
  auto r_delayed = TrainDistributed(g, 3, delayed);
  ASSERT_TRUE(r_delayed.ok());

  EXPECT_LT(r_delayed->total_comm_bytes, r_exact->total_comm_bytes);
  EXPECT_GT(r_delayed->best_val_acc, 0.8);  // converges, just slower
}

TEST(TrainerTest, EarlyStoppingHonorsPatience) {
  const graph::Graph g = TinyGraph();
  TrainOptions opt = BaseOptions(500);
  opt.patience = 5;
  auto r = TrainDistributed(g, 2, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->epochs.size(), 500u);
  EXPECT_EQ(r->epochs.size(), r->best_epoch + 1 + 5);
}

TEST(TrainerTest, ThreeLayerModelTrains) {
  const graph::Graph g = TinyGraph();
  TrainOptions opt = BaseOptions(20);
  opt.model.num_layers = 3;
  opt.fp_mode = FpMode::kReqEc;
  opt.bp_mode = BpMode::kResEc;
  opt.exchange.fp_bits = 4;
  opt.exchange.bp_bits = 4;
  auto r = TrainDistributed(g, 3, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->best_val_acc, 0.85);
}

TEST(TrainerTest, UncachedFeaturesAlsoWork) {
  const graph::Graph g = TinyGraph();
  TrainOptions cached = BaseOptions(8);
  TrainOptions uncached = BaseOptions(8);
  uncached.cache_features = false;
  auto r_cached = TrainDistributed(g, 3, cached);
  auto r_uncached = TrainDistributed(g, 3, uncached);
  ASSERT_TRUE(r_cached.ok());
  ASSERT_TRUE(r_uncached.ok());
  // Identical math; the uncached run re-ships the feature halo per epoch.
  for (size_t e = 0; e < 8; ++e) {
    EXPECT_NEAR(r_cached->epochs[e].loss, r_uncached->epochs[e].loss, 1e-5);
  }
  EXPECT_GT(r_uncached->total_comm_bytes, r_cached->total_comm_bytes);
}

TEST(TrainerTest, SimulatedTimeAccountsComputeAndComm) {
  const graph::Graph g = TinyGraph();
  TrainOptions opt = BaseOptions(5);
  auto r = TrainDistributed(g, 3, opt);
  ASSERT_TRUE(r.ok());
  for (const auto& e : r->epochs) {
    EXPECT_GT(e.sim_seconds, 0.0);
    EXPECT_GT(e.comm_bytes, 0u);
    EXPECT_GT(e.param_bytes, 0u);
  }
  EXPECT_GT(r->avg_epoch_seconds, 0.0);
  EXPECT_EQ(r->epochs.size(), 5u);
}

TEST(TrainerTest, EpochsCarryPhaseBreakdown) {
  const graph::Graph g = TinyGraph();
  TrainOptions opt = BaseOptions(3);
  auto r = TrainDistributed(g, 3, opt);
  ASSERT_TRUE(r.ok());
  for (const auto& e : r->epochs) {
    ASSERT_FALSE(e.phase_seconds.empty());
    // Phases are summed across the 3 workers, so the breakdown is bounded
    // by 3x the lock-step epoch time (sim_seconds is the max over
    // workers, read at finalize — allow sub-percent accounting jitter
    // from clock charges that straddle the epoch barrier).
    double total = 0.0;
    for (const auto& [name, seconds] : e.phase_seconds) {
      EXPECT_GE(seconds, 0.0) << name;
      total += seconds;
    }
    EXPECT_GT(total, 0.0);
    EXPECT_LE(total, 3.0 * e.sim_seconds * 1.01 + 1e-9);
    EXPECT_GT(e.PhaseSeconds("fp_compute"), 0.0);
    EXPECT_GT(e.PhaseSeconds("fp_exchange"), 0.0);
    EXPECT_GT(e.PhaseSeconds("param_sync"), 0.0);
    EXPECT_DOUBLE_EQ(e.PhaseSeconds("no_such_phase"), 0.0);
  }
}

TEST(TrainerTest, ConvergenceEpochOnDegenerateCurves) {
  TrainResult empty;
  EXPECT_EQ(empty.ConvergenceEpoch(), 0u);
  EXPECT_DOUBLE_EQ(empty.ConvergenceSeconds(), 0.0);

  TrainResult one;
  EpochMetrics m;
  m.val_acc = 0.7;
  m.sim_seconds = 2.0;
  one.epochs.push_back(m);
  one.best_val_acc = 0.7;
  EXPECT_EQ(one.ConvergenceEpoch(), 0u);
  EXPECT_DOUBLE_EQ(one.ConvergenceSeconds(), 2.0);
}

TEST(TrainerTest, ConvergenceHelpersSummarizeCurve) {
  TrainResult r;
  r.best_val_acc = 0.9;
  for (int i = 0; i < 5; ++i) {
    EpochMetrics m;
    m.val_acc = 0.5 + 0.1 * i;
    m.sim_seconds = 1.0;
    r.epochs.push_back(m);
  }
  EXPECT_EQ(r.ConvergenceEpoch(0.005), 4u);
  EXPECT_EQ(r.ConvergenceEpoch(0.15), 3u);
  EXPECT_DOUBLE_EQ(r.ConvergenceSeconds(0.15), 4.0);
}

TEST(TrainerTest, RejectsGraphWithoutSplits) {
  graph::SbmConfig cfg;
  cfg.num_vertices = 20;
  cfg.num_classes = 2;
  cfg.feature_dim = 3;
  graph::Graph g = *graph::GenerateSbm(cfg);
  TrainOptions opt = BaseOptions(2);
  EXPECT_EQ(TrainDistributed(g, 2, opt).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace ecg::core
