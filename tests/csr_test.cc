#include "tensor/csr.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/random.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace ecg::tensor {
namespace {

using Triplet = std::tuple<uint32_t, uint32_t, float>;

TEST(CsrTest, FromTripletsSortsAndDedupes) {
  // Unsorted input with a duplicate (0,1) entry that must sum.
  const std::vector<Triplet> trips = {
      {1, 2, 3.0f}, {0, 1, 1.0f}, {0, 0, 2.0f}, {0, 1, 4.0f}};
  auto r = CsrMatrix::FromTriplets(2, 3, trips);
  ASSERT_TRUE(r.ok());
  const CsrMatrix& m = *r;
  EXPECT_EQ(m.nnz(), 3u);
  const Matrix dense = m.ToDense();
  EXPECT_FLOAT_EQ(dense.At(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(dense.At(0, 1), 5.0f);
  EXPECT_FLOAT_EQ(dense.At(1, 2), 3.0f);
  // Columns sorted within each row.
  for (size_t row = 0; row < m.rows(); ++row) {
    for (uint64_t i = m.row_ptr()[row] + 1; i < m.row_ptr()[row + 1]; ++i) {
      EXPECT_LT(m.col_idx()[i - 1], m.col_idx()[i]);
    }
  }
}

TEST(CsrTest, OutOfRangeTripletRejected) {
  EXPECT_EQ(CsrMatrix::FromTriplets(2, 2, {{2, 0, 1.0f}}).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(CsrMatrix::FromTriplets(2, 2, {{0, 2, 1.0f}}).status().code(),
            StatusCode::kOutOfRange);
}

TEST(CsrTest, EmptyMatrix) {
  auto r = CsrMatrix::FromTriplets(3, 3, {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->nnz(), 0u);
  Matrix x(3, 2);
  x.Fill(1.0f);
  Matrix y;
  r->SpMM(x, &y);
  EXPECT_TRUE(AllClose(y, Matrix(3, 2)));
}

TEST(CsrTest, SpMMMatchesDenseReference) {
  Rng rng(31);
  const size_t rows = 40, cols = 33, dim = 7;
  std::vector<Triplet> trips;
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (rng.NextBool(0.15)) {
        trips.emplace_back(static_cast<uint32_t>(r),
                           static_cast<uint32_t>(c),
                           static_cast<float>(rng.NextGaussian()));
      }
    }
  }
  auto m = CsrMatrix::FromTriplets(rows, cols, trips);
  ASSERT_TRUE(m.ok());
  Matrix x(cols, dim);
  for (size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.NextGaussian());
  }
  Matrix y;
  m->SpMM(x, &y);
  Matrix expected;
  Gemm(m->ToDense(), x, &expected);
  EXPECT_TRUE(AllClose(y, expected, 1e-4f));
}

TEST(CsrTest, TransposedMatchesDenseTranspose) {
  Rng rng(32);
  std::vector<Triplet> trips;
  for (int i = 0; i < 100; ++i) {
    trips.emplace_back(static_cast<uint32_t>(rng.NextBelow(13)),
                       static_cast<uint32_t>(rng.NextBelow(9)),
                       static_cast<float>(rng.NextGaussian()));
  }
  auto m = CsrMatrix::FromTriplets(13, 9, trips);
  ASSERT_TRUE(m.ok());
  const CsrMatrix t = m->Transposed();
  EXPECT_EQ(t.rows(), 9u);
  EXPECT_EQ(t.cols(), 13u);
  EXPECT_EQ(t.nnz(), m->nnz());
  EXPECT_TRUE(AllClose(t.ToDense(), Transpose(m->ToDense()), 1e-5f));
}

TEST(CsrTest, SymmetricNormalizedAdjacencyRowSums) {
  // For Â = D^{-1/2}(A+I)D^{-1/2} of a k-regular graph every row sums to 1.
  const uint32_t n = 6;
  std::vector<Triplet> trips;
  const float w = 1.0f / 3.0f;  // degree 2 + self loop -> 1/sqrt(3*3)
  for (uint32_t v = 0; v < n; ++v) {
    trips.emplace_back(v, v, w);
    trips.emplace_back(v, (v + 1) % n, w);
    trips.emplace_back(v, (v + n - 1) % n, w);
  }
  auto m = CsrMatrix::FromTriplets(n, n, trips);
  ASSERT_TRUE(m.ok());
  Matrix ones(n, 1);
  ones.Fill(1.0f);
  Matrix y;
  m->SpMM(ones, &y);
  for (uint32_t v = 0; v < n; ++v) EXPECT_NEAR(y.At(v, 0), 1.0f, 1e-5f);
}

}  // namespace
}  // namespace ecg::tensor
