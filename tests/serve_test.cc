#include "serve/server.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "core/checkpoint.h"
#include "core/gcn.h"
#include "graph/generator.h"
#include "serve/load_gen.h"
#include "tensor/matrix.h"

namespace ecg::serve {
namespace {

using tensor::Matrix;

graph::Graph ServeGraph(uint32_t n = 200, uint64_t seed = 11) {
  graph::SbmConfig cfg;
  cfg.num_vertices = n;
  cfg.num_classes = 4;
  cfg.avg_degree = 6.0;
  cfg.feature_dim = 8;
  cfg.seed = seed;
  return *graph::GenerateSbm(cfg);
}

core::GcnConfig Model(core::GnnKind kind = core::GnnKind::kGcn) {
  core::GcnConfig m;
  m.kind = kind;
  m.num_layers = 2;
  m.hidden_dim = 12;
  m.seed = 99;
  return m;
}

dist::ParameterServerGroup MakePs(const graph::Graph& g,
                                  const core::GcnConfig& m,
                                  uint32_t workers = 1) {
  return dist::ParameterServerGroup(
      core::GcnLayerShapes(m, g.feature_dim(),
                           static_cast<size_t>(g.num_classes())),
      /*num_servers=*/1, workers, /*lr=*/0.01f, m.seed);
}

// InferenceServer holds atomics (immovable); construct as a prvalue and
// let the caller run Init().
InferenceServer MakeServer(const graph::Graph& g, const core::GcnConfig& m,
                           ServeOptions opts = {}) {
  return InferenceServer(&g, m, opts);
}

// The tentpole correctness property: coalescing a batch and caching rows
// across batches may change WHAT is computed, never the bits of any
// logits row, because each row is a fixed-order pure function of (layer,
// vertex, weights version).
TEST(ServeTest, CoalescedBatchMatchesNaivePerQueryBitwise) {
  for (const auto kind : {core::GnnKind::kGcn, core::GnnKind::kSage}) {
    const graph::Graph g = ServeGraph();
    const core::GcnConfig m = Model(kind);
    auto ps = MakePs(g, m);

    InferenceServer batched = MakeServer(g, m);
    ASSERT_TRUE(batched.Init().ok());
    ASSERT_TRUE(batched.AttachParameterServer(&ps).ok());
    InferenceServer naive = MakeServer(g, m);
    ASSERT_TRUE(naive.Init().ok());
    ASSERT_TRUE(naive.AttachParameterServer(&ps).ok());

    // Batch with duplicates and overlapping neighbourhoods.
    std::vector<uint32_t> queries;
    for (uint32_t v = 0; v < g.num_vertices(); v += 3) queries.push_back(v);
    queries.push_back(queries.front());

    Matrix coalesced;
    ASSERT_TRUE(batched.Classify(queries, &coalesced).ok());
    ASSERT_EQ(coalesced.rows(), queries.size());

    for (size_t i = 0; i < queries.size(); ++i) {
      Matrix single;
      ASSERT_TRUE(naive.Classify({queries[i]}, &single).ok());
      ASSERT_EQ(single.cols(), coalesced.cols());
      EXPECT_EQ(std::memcmp(single.Row(0), coalesced.Row(i),
                            single.cols() * sizeof(float)),
                0)
          << "logits differ for query " << queries[i] << " ("
          << core::GnnKindName(kind) << ")";
    }
  }
}

TEST(ServeTest, RepeatQueriesHitTheCacheWithIdenticalBits) {
  const graph::Graph g = ServeGraph();
  const core::GcnConfig m = Model();
  auto ps = MakePs(g, m);
  InferenceServer server = MakeServer(g, m);
  ASSERT_TRUE(server.Init().ok());
  ASSERT_TRUE(server.AttachParameterServer(&ps).ok());

  std::vector<uint32_t> queries = {1, 5, 9, 13};
  Matrix first, second;
  InferenceServer::BatchStats cold, warm;
  ASSERT_TRUE(server.Classify(queries, &first, &cold).ok());
  ASSERT_TRUE(server.Classify(queries, &second, &warm).ok());

  EXPECT_GT(cold.rows_computed, 0u);
  EXPECT_EQ(warm.rows_computed, 0u);  // everything from the cache
  EXPECT_GT(warm.rows_cached, 0u);
  EXPECT_EQ(std::memcmp(first.Row(0), second.Row(0),
                        queries.size() * first.cols() * sizeof(float)),
            0);
  EXPECT_GT(server.cache().GetStats().hits, 0u);
}

TEST(ServeTest, ParameterPublishInvalidatesTheCache) {
  const graph::Graph g = ServeGraph();
  const core::GcnConfig m = Model();
  auto ps = MakePs(g, m, /*workers=*/1);
  InferenceServer server = MakeServer(g, m);
  ASSERT_TRUE(server.Init().ok());
  ASSERT_TRUE(server.AttachParameterServer(&ps).ok());

  const std::vector<uint32_t> queries = {2, 4, 6};
  Matrix before, after;
  InferenceServer::BatchStats warmup, post;
  ASSERT_TRUE(server.Classify(queries, &before, &warmup).ok());
  const uint64_t v0 = server.weights_version();

  // A zero gradient leaves the weights numerically unchanged (Adam's
  // moments stay zero) but still publishes a new parameter version.
  std::vector<Matrix> dw, db;
  for (size_t l = 0; l < ps.num_layers(); ++l) {
    dw.emplace_back(ps.weight(l).rows(), ps.weight(l).cols());
    db.emplace_back(1, ps.bias(l).cols());
  }
  ps.Push(0, std::move(dw), std::move(db));

  ASSERT_TRUE(server.Classify(queries, &after, &post).ok());
  EXPECT_GT(server.weights_version(), v0);  // refresh happened
  EXPECT_GT(post.rows_computed, 0u);        // cache was not trusted
  EXPECT_EQ(std::memcmp(before.Row(0), after.Row(0),
                        queries.size() * before.cols() * sizeof(float)),
            0);  // same weights -> same bits
}

TEST(ServeTest, AdmissionControlShedsWhenQueueIsFull) {
  const graph::Graph g = ServeGraph();
  const core::GcnConfig m = Model();
  auto ps = MakePs(g, m);
  ServeOptions opts;
  opts.queue_depth = 4;
  opts.max_batch = 2;
  InferenceServer server = MakeServer(g, m, opts);
  ASSERT_TRUE(server.Init().ok());
  ASSERT_TRUE(server.AttachParameterServer(&ps).ok());

  for (uint32_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(server.Enqueue(i, 0.001 * i).ok());
  }
  const Status shed = server.Enqueue(40, 0.005);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  const auto retry_ms_of = [](const Status& s) {
    const size_t at = s.message().find("retry after ~");
    EXPECT_NE(at, std::string::npos) << s.message();
    return std::stod(s.message().substr(at + 13));
  };
  // Even before any batch completes, the hint must be a usable (positive)
  // backoff, not zero.
  EXPECT_GT(retry_ms_of(shed), 0.0);

  auto batch = server.ServeBatch();
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->size(), 2u);  // max_batch
  EXPECT_EQ(server.queue_size(), 2u);
  EXPECT_TRUE(server.Enqueue(41, 0.006).ok());  // space again

  // Predictions come back for the dequeued vertices, in arrival order.
  EXPECT_EQ((*batch)[0].vertex, 0u);
  EXPECT_EQ((*batch)[1].vertex, 1u);
  for (const auto& c : *batch) EXPECT_GE(c.predicted, 0);

  // After a completed batch seeds the EWMA from measured service time,
  // the shed hint must stay nonzero (floored even under a zero-cost
  // service model).
  ASSERT_TRUE(server.Enqueue(42, 0.007).ok());
  const Status shed_again = server.Enqueue(43, 0.008);
  ASSERT_FALSE(shed_again.ok());
  EXPECT_EQ(shed_again.code(), StatusCode::kResourceExhausted);
  EXPECT_GT(retry_ms_of(shed_again), 0.0);
}

TEST(ServeTest, ServesFromACheckpointFile) {
  const graph::Graph g = ServeGraph();
  const core::GcnConfig m = Model();
  auto ps = MakePs(g, m, /*workers=*/2);

  // Write a real checkpoint file the way training does.
  core::CheckpointStore store(2, ::testing::TempDir());
  store.Begin(/*next_epoch=*/7);
  std::vector<uint8_t> global;
  ByteWriter w(&global);
  ps.SaveTo(&w);
  store.PutGlobal(std::move(global));
  store.PutWorker(0, {});
  store.PutWorker(1, {});
  ASSERT_TRUE(store.Commit().ok());

  InferenceServer from_file = MakeServer(g, m);
  ASSERT_TRUE(from_file.Init().ok());
  ASSERT_TRUE(from_file.LoadFromCheckpoint(store.LatestPath()).ok());
  InferenceServer live = MakeServer(g, m);
  ASSERT_TRUE(live.Init().ok());
  ASSERT_TRUE(live.AttachParameterServer(&ps).ok());

  const std::vector<uint32_t> queries = {0, 3, 7, 19};
  Matrix a, b;
  ASSERT_TRUE(from_file.Classify(queries, &a).ok());
  ASSERT_TRUE(live.Classify(queries, &b).ok());
  EXPECT_EQ(std::memcmp(a.Row(0), b.Row(0),
                        queries.size() * a.cols() * sizeof(float)),
            0);
}

TEST(ServeTest, RejectsMismatchedWeights) {
  const graph::Graph g = ServeGraph();
  core::GcnConfig three_layers = Model();
  three_layers.num_layers = 3;
  auto ps = MakePs(g, three_layers);  // 3-layer weights
  InferenceServer server = MakeServer(g, Model());  // 2-layer model
  ASSERT_TRUE(server.Init().ok());
  EXPECT_FALSE(server.AttachParameterServer(&ps).ok());
}

TEST(ServeTest, ClassifyValidatesState) {
  const graph::Graph g = ServeGraph();
  InferenceServer server = MakeServer(g, Model());
  ASSERT_TRUE(server.Init().ok());
  Matrix logits;
  EXPECT_FALSE(server.Classify({0}, &logits).ok());  // no weights
  auto ps = MakePs(g, Model());
  ASSERT_TRUE(server.AttachParameterServer(&ps).ok());
  EXPECT_FALSE(server.Classify({g.num_vertices()}, &logits).ok());
}

TEST(ServeSpecTest, RoundTripsAndRejects) {
  const auto opts = ParseServeOptions(
      "batch=64,queue=512,cache_mb=128,shards=4,gflops=2.5,fanout=10,"
      "seed=5,overhead_us=20,slo_ms=9");
  ASSERT_TRUE(opts.ok()) << opts.status().message();
  EXPECT_EQ(opts->max_batch, 64u);
  EXPECT_EQ(opts->queue_depth, 512u);
  EXPECT_EQ(opts->cache_mb, 128u);
  EXPECT_EQ(opts->cache_shards, 4u);
  EXPECT_EQ(opts->gflops, 2.5);
  EXPECT_EQ(opts->fanout, 10u);
  EXPECT_EQ(opts->slo_ms, 9.0);

  EXPECT_TRUE(ParseServeOptions("").ok());  // all defaults
  for (const char* bad : {"bogus=1", "batch=0", "gflops=0", "queue=",
                          "slo_ms=-1", "batch=8,batch=9"}) {
    EXPECT_FALSE(ParseServeOptions(bad).ok()) << bad;
  }
  const std::string help = ServeSpecHelp();
  for (const char* k : {"batch", "queue", "cache_mb", "gflops", "slo_ms"}) {
    EXPECT_NE(help.find(k), std::string::npos) << k;
  }
}

TEST(ServeLoadTest, OpenLoopRunIsDeterministicAndAccountsEveryQuery) {
  const graph::Graph g = ServeGraph(300, 21);
  const core::GcnConfig m = Model();
  auto ps = MakePs(g, m);

  WorkloadOptions w = *ParseWorkloadOptions(
      "qps=4000,duration=0.25,zipf=1.1,hot=64,seed=13");

  LoadResult runs[2];
  for (LoadResult& out : runs) {
    InferenceServer server = MakeServer(g, m);
    ASSERT_TRUE(server.Init().ok());
    ASSERT_TRUE(server.AttachParameterServer(&ps).ok());
    auto res = RunOpenLoop(&server, w);
    ASSERT_TRUE(res.ok()) << res.status().message();
    out = *res;
  }

  EXPECT_GT(runs[0].offered, 0u);
  EXPECT_EQ(runs[0].served + runs[0].shed, runs[0].offered);
  EXPECT_GT(runs[0].served, 0u);
  EXPECT_GE(runs[0].p99_ms, runs[0].p50_ms);
  EXPECT_GE(runs[0].mean_batch, 1.0);
  EXPECT_GT(runs[0].cache_hit_rate, 0.0);  // hot-vertex skew pays off

  // Same seed, fresh server: identical simulation to the last bit.
  EXPECT_EQ(runs[0].offered, runs[1].offered);
  EXPECT_EQ(runs[0].served, runs[1].served);
  EXPECT_EQ(runs[0].shed, runs[1].shed);
  EXPECT_EQ(runs[0].batches, runs[1].batches);
  EXPECT_EQ(runs[0].p50_ms, runs[1].p50_ms);
  EXPECT_EQ(runs[0].p99_ms, runs[1].p99_ms);
}

}  // namespace
}  // namespace ecg::serve
