// Property tests for the ecg::kern registry: every variant compiled into
// this binary (and supported by the host CPU) must produce byte-identical
// outputs to the scalar reference for the float kernels and the integer
// kernels alike — the contract stated in kernels.h. Also covers the
// ForceVariant override, the bitpack width-rejection surface across the
// full 1..32 range, and the int8 packed-domain GEMM: bitwise determinism
// across variants, bounded error against the float path, and end-to-end
// trainer convergence with int8_gemm on.

#include "common/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "common/bitpack.h"
#include "common/random.h"
#include "compress/int8_gemm.h"
#include "compress/quantize.h"
#include "core/trainer.h"
#include "graph/generator.h"
#include "tensor/ops.h"

namespace ecg {
namespace {

using compress::BucketValueMode;
using compress::QuantizerOptions;
using tensor::Matrix;

/// Restores auto dispatch even when a test body fails mid-force.
class KernTest : public ::testing::Test {
 protected:
  void TearDown() override { kern::ForceVariant("auto"); }
};

std::vector<float> RandomFloats(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> data(count);
  for (auto& v : data) v = static_cast<float>(rng.NextGaussian() * 3.0);
  if (count > 2) {
    data[0] = -17.5f;       // force the extremes somewhere known
    data[count / 2] = 9.25f;
  }
  return data;
}

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

// The counts below cover empty inputs, single elements, word-boundary
// straddles for every supported width, and ragged final words.
const size_t kCounts[] = {0, 1, 5, 31, 32, 33, 63, 65, 1023, 1024, 1025,
                          4096 + 7};

TEST_F(KernTest, RegistryListsScalarLastAndResolvesActive) {
  const auto variants = kern::AvailableVariants();
  ASSERT_FALSE(variants.empty());
  EXPECT_STREQ(variants.back()->name, "scalar");
  bool found = false;
  for (const kern::Kernels* v : variants) {
    if (std::string(v->name) == kern::ActiveName()) found = true;
  }
  EXPECT_TRUE(found) << "active variant " << kern::ActiveName()
                     << " not in AvailableVariants()";
}

TEST_F(KernTest, ForceVariantRejectsUnknownAndRestoresAuto) {
  const std::string before = kern::ActiveName();
  EXPECT_FALSE(kern::ForceVariant("mips"));
  EXPECT_EQ(before, kern::ActiveName());  // failed force changes nothing
  ASSERT_TRUE(kern::ForceVariant("scalar"));
  EXPECT_STREQ(kern::ActiveName(), "scalar");
  ASSERT_TRUE(kern::ForceVariant("auto"));
  EXPECT_EQ(before, kern::ActiveName());
}

TEST_F(KernTest, PackFlatBitIdenticalAcrossVariants) {
  const auto variants = kern::AvailableVariants();
  const kern::Kernels* scalar = variants.back();
  for (int bits : {1, 2, 4, 8, 16}) {
    for (size_t count : kCounts) {
      const std::vector<float> data = RandomFloats(count, 100 + count);
      float mn = 0.0f, mx = 0.0f;
      if (count > 0) scalar->minmax(data.data(), count, &mn, &mx);
      const float width =
          mx > mn ? (mx - mn) / static_cast<float>(1u << bits) : 1.0f;
      const size_t words = PackedWordCount(count, bits);
      std::vector<uint32_t> ref(words, 0u);
      scalar->pack_flat(bits, data.data(), count, 0, words, mn, 1.0f / width,
                        ref.data());
      for (const kern::Kernels* v : variants) {
        std::vector<uint32_t> got(words, 0u);
        v->pack_flat(bits, data.data(), count, 0, words, mn, 1.0f / width,
                     got.data());
        EXPECT_EQ(ref, got) << v->name << " bits=" << bits
                            << " count=" << count;
      }
    }
  }
}

TEST_F(KernTest, UnpackFlatBitIdenticalAcrossVariants) {
  const auto variants = kern::AvailableVariants();
  const kern::Kernels* scalar = variants.back();
  for (int bits : {1, 2, 4, 8, 16}) {
    std::vector<float> table(size_t{1} << bits);
    Rng rng(7);
    for (auto& t : table) t = static_cast<float>(rng.NextGaussian());
    for (size_t count : kCounts) {
      const std::vector<float> data = RandomFloats(count, 200 + count);
      const size_t words = PackedWordCount(count, bits);
      std::vector<uint32_t> packed(words, 0u);
      scalar->pack_flat(bits, data.data(), count, 0, words, -9.0f, 0.7f,
                        packed.data());
      std::vector<float> ref(count, 0.0f);
      scalar->unpack_flat(bits, packed.data(), count, 0, words, table.data(),
                          ref.data());
      for (const kern::Kernels* v : variants) {
        std::vector<float> got(count, 0.0f);
        v->unpack_flat(bits, packed.data(), count, 0, words, table.data(),
                       got.data());
        EXPECT_EQ(0, std::memcmp(ref.data(), got.data(),
                                 count * sizeof(float)))
            << v->name << " bits=" << bits << " count=" << count;
      }
    }
  }
}

TEST_F(KernTest, MinMaxBitIdenticalAcrossVariants) {
  const auto variants = kern::AvailableVariants();
  const kern::Kernels* scalar = variants.back();
  for (size_t count : kCounts) {
    if (count == 0) continue;  // minmax requires count > 0
    const std::vector<float> data = RandomFloats(count, 300 + count);
    float ref_mn = 0.0f, ref_mx = 0.0f;
    scalar->minmax(data.data(), count, &ref_mn, &ref_mx);
    for (const kern::Kernels* v : variants) {
      float mn = 0.0f, mx = 0.0f;
      v->minmax(data.data(), count, &mn, &mx);
      EXPECT_EQ(0, std::memcmp(&ref_mn, &mn, sizeof(float))) << v->name;
      EXPECT_EQ(0, std::memcmp(&ref_mx, &mx, sizeof(float))) << v->name;
    }
  }
}

// Exercises the public bitpack API across every bit width 1..32 with each
// variant forced via the override: unsupported widths must be rejected
// before any kernel runs; supported widths must round-trip and produce
// packed words byte-identical to the scalar variant's.
TEST_F(KernTest, BitpackAllWidthsAcrossForcedVariants) {
  for (int bits = 1; bits <= 32; ++bits) {
    const bool supported = IsSupportedBitWidth(bits);
    for (size_t count : kCounts) {
      Rng rng(400 + static_cast<uint64_t>(bits) * 37 + count);
      std::vector<uint32_t> values(count);
      const uint64_t top =
          bits >= 31 ? 0x7FFFFFFFu : ((uint64_t{1} << bits) - 1);
      for (auto& v : values) {
        v = static_cast<uint32_t>(rng.NextBelow(top + 1));
      }
      std::vector<uint32_t> ref_packed;
      if (supported) {
        ASSERT_TRUE(kern::ForceVariant("scalar"));
        ASSERT_TRUE(PackBits(values, bits, &ref_packed).ok());
      }
      for (const kern::Kernels* v : kern::AvailableVariants()) {
        ASSERT_TRUE(kern::ForceVariant(v->name));
        std::vector<uint32_t> packed;
        const Status st = PackBits(values, bits, &packed);
        if (!supported) {
          EXPECT_FALSE(st.ok()) << v->name << " bits=" << bits;
          continue;
        }
        ASSERT_TRUE(st.ok()) << v->name << " bits=" << bits;
        EXPECT_EQ(ref_packed, packed)
            << v->name << " bits=" << bits << " count=" << count;
        std::vector<uint32_t> back;
        ASSERT_TRUE(UnpackBits(packed, count, bits, &back).ok());
        EXPECT_EQ(values, back) << v->name << " bits=" << bits;
      }
      kern::ForceVariant("auto");
    }
  }
}

// Full public-API integration: Quantize/Dequantize under forced scalar is
// byte-identical to auto dispatch (packed words AND reconstructed floats).
TEST_F(KernTest, QuantizeForcedScalarMatchesAutoBitwise) {
  const Matrix m = RandomMatrix(129, 33, 11);  // ragged everything
  for (int bits : {1, 2, 4, 8, 16}) {
    QuantizerOptions opts{bits, BucketValueMode::kMidpoint};
    ASSERT_TRUE(kern::ForceVariant("auto"));
    auto q_auto = compress::Quantize(m, opts);
    ASSERT_TRUE(q_auto.ok());
    auto d_auto = compress::Dequantize(*q_auto);
    ASSERT_TRUE(d_auto.ok());
    ASSERT_TRUE(kern::ForceVariant("scalar"));
    auto q_scalar = compress::Quantize(m, opts);
    ASSERT_TRUE(q_scalar.ok());
    auto d_scalar = compress::Dequantize(*q_scalar);
    ASSERT_TRUE(d_scalar.ok());
    kern::ForceVariant("auto");
    EXPECT_EQ(q_auto->packed_ids, q_scalar->packed_ids) << "bits=" << bits;
    ASSERT_EQ(d_auto->size(), d_scalar->size());
    EXPECT_EQ(0, std::memcmp(d_auto->data(), d_scalar->data(),
                             d_auto->size() * sizeof(float)))
        << "bits=" << bits;
  }
}

TEST_F(KernTest, GemmS8RowBitIdenticalAcrossVariants) {
  const auto variants = kern::AvailableVariants();
  const kern::Kernels* scalar = variants.back();
  for (size_t k : {size_t{1}, size_t{31}, size_t{64}, size_t{65},
                   size_t{128}, size_t{200}}) {
    const size_t n = 7;
    const size_t stride = (k + 63) & ~size_t{63};
    Rng rng(500 + k);
    std::vector<int8_t> a(k);
    for (auto& v : a) {
      v = static_cast<int8_t>(static_cast<int>(rng.NextBelow(256)) - 128);
    }
    std::vector<int8_t> wt(n * stride, 0);
    for (size_t j = 0; j < n; ++j) {
      for (size_t kk = 0; kk < k; ++kk) {
        wt[j * stride + kk] =
            static_cast<int8_t>(static_cast<int>(rng.NextBelow(255)) - 127);
      }
    }
    std::vector<int32_t> ref(n, 123);  // accumulate on a nonzero base
    scalar->gemm_s8_row(a.data(), wt.data(), k, n, stride, ref.data());
    for (const kern::Kernels* v : variants) {
      std::vector<int32_t> got(n, 123);
      v->gemm_s8_row(a.data(), wt.data(), k, n, stride, got.data());
      EXPECT_EQ(ref, got) << v->name << " k=" << k;
    }
  }
}

TEST_F(KernTest, UnpackIdsS8CentersAndMatchesAcrossVariants) {
  const auto variants = kern::AvailableVariants();
  for (int bits : {1, 2, 4, 8}) {
    for (size_t count : kCounts) {
      Rng rng(600 + static_cast<uint64_t>(bits) + count);
      std::vector<uint32_t> ids(count);
      for (auto& v : ids) {
        v = static_cast<uint32_t>(rng.NextBelow(uint64_t{1} << bits));
      }
      std::vector<uint32_t> packed;
      ASSERT_TRUE(PackBits(ids, bits, &packed).ok());
      std::vector<int8_t> ref(count);
      for (size_t i = 0; i < count; ++i) {
        ref[i] = static_cast<int8_t>(static_cast<int>(ids[i]) - 128);
      }
      for (const kern::Kernels* v : variants) {
        std::vector<int8_t> got(count, 0);
        v->unpack_ids_s8(bits, packed.data(), count, got.data());
        EXPECT_EQ(ref, got) << v->name << " bits=" << bits
                            << " count=" << count;
      }
    }
  }
}

TEST_F(KernTest, Int8GemmSupportedPredicate) {
  compress::QuantizedMatrix q;
  q.implicit_midpoints = true;
  q.bits = 8;
  q.cols = 128;  // 128 * 8 = 1024 bits, word-aligned
  EXPECT_TRUE(compress::Int8GemmSupported(q));
  q.bits = 16;
  EXPECT_FALSE(compress::Int8GemmSupported(q));  // > 8 bits
  q.bits = 8;
  q.cols = 129;
  EXPECT_FALSE(compress::Int8GemmSupported(q));  // row not word-aligned
  q.cols = 128;
  q.implicit_midpoints = false;
  EXPECT_FALSE(compress::Int8GemmSupported(q));  // explicit table
  q.implicit_midpoints = true;
  q.bits = 4;
  q.cols = 128;  // 4-bit rows of 128 are word-aligned too
  EXPECT_TRUE(compress::Int8GemmSupported(q));
}

// The fused packed-domain GEMM against dequantize-then-float-GEMM: the
// activation side of the decomposition is exact, so the only error is the
// symmetric weight quantization — bounded per output element by
// width_w/2 * sum_k |dequant_k| with width_w = max|w|/127.
TEST_F(KernTest, DequantGemmRowsMatchesFloatReferenceWithinWeightError) {
  const size_t rows_n = 64, k = 32, n = 16;
  const Matrix a = RandomMatrix(rows_n, k, 21);
  const Matrix w = RandomMatrix(k, n, 22);
  std::vector<uint32_t> rows;
  for (uint32_t r = 0; r < rows_n; r += 2) rows.push_back(r);  // subset

  auto q = compress::QuantizeRows(
      a, rows, QuantizerOptions{8, BucketValueMode::kMidpoint});
  ASSERT_TRUE(q.ok());
  const compress::Int8Panel panel = compress::PackWeightPanel(w);

  Matrix ref(rows_n, n), fused(rows_n, n);
  Matrix scratch(static_cast<uint32_t>(rows.size()), k);
  {
    // Reference: decode the same payload, then float GemmRows over the
    // gathered copy (row i of scratch is target row rows[i]).
    std::vector<uint32_t> ident(rows.size());
    for (uint32_t i = 0; i < ident.size(); ++i) ident[i] = i;
    ASSERT_TRUE(compress::DequantizeInto(*q, ident, &scratch).ok());
    Matrix full(rows_n, k);
    for (size_t i = 0; i < rows.size(); ++i) {
      std::memcpy(full.Row(rows[i]), scratch.Row(i), k * sizeof(float));
    }
    tensor::GemmRows(full, w, rows, &ref);
  }
  ASSERT_TRUE(compress::DequantGemmRows(*q, panel, rows, &fused).ok());

  float max_w = 0.0f, max_v = 0.0f;
  for (size_t i = 0; i < w.size(); ++i) {
    max_w = std::max(max_w, std::fabs(w.data()[i]));
  }
  for (size_t i = 0; i < scratch.size(); ++i) {
    max_v = std::max(max_v, std::fabs(scratch.data()[i]));
  }
  const float bound =
      (max_w / 127.0f) * 0.5f * max_v * static_cast<float>(k) + 1e-3f;
  for (const uint32_t r : rows) {
    for (size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(ref.Row(r)[j], fused.Row(r)[j], bound)
          << "row " << r << " col " << j;
    }
  }
  // Untouched rows stay zero.
  EXPECT_FLOAT_EQ(fused.Row(1)[0], 0.0f);
}

// The fused path is dispatched, so its int8 dot products must also be
// identical across variants end to end.
TEST_F(KernTest, DequantGemmRowsBitIdenticalAcrossVariants) {
  const Matrix a = RandomMatrix(48, 16, 31);
  const Matrix w = RandomMatrix(16, 8, 32);
  std::vector<uint32_t> rows;
  for (uint32_t r = 0; r < 48; ++r) rows.push_back(r);
  auto q = compress::QuantizeRows(
      a, rows, QuantizerOptions{8, BucketValueMode::kMidpoint});
  ASSERT_TRUE(q.ok());
  const compress::Int8Panel panel = compress::PackWeightPanel(w);

  ASSERT_TRUE(kern::ForceVariant("scalar"));
  Matrix ref(48, 8);
  ASSERT_TRUE(compress::DequantGemmRows(*q, panel, rows, &ref).ok());
  for (const kern::Kernels* v : kern::AvailableVariants()) {
    ASSERT_TRUE(kern::ForceVariant(v->name));
    Matrix got(48, 8);
    ASSERT_TRUE(compress::DequantGemmRows(*q, panel, rows, &got).ok());
    EXPECT_EQ(0, std::memcmp(ref.data(), got.data(),
                             ref.size() * sizeof(float)))
        << v->name;
  }
}

// End-to-end gate: training with the int8 boundary transform converges to
// within 0.1 test accuracy of the float path on a small SBM replica.
TEST_F(KernTest, TrainerWithInt8GemmConvergesNearFloatPath) {
  graph::SbmConfig cfg;
  cfg.num_vertices = 300;
  cfg.num_classes = 3;
  cfg.avg_degree = 6.0;
  cfg.feature_dim = 8;
  cfg.seed = 9;
  graph::Graph g = *graph::GenerateSbm(cfg);
  ASSERT_TRUE(graph::AssignSplits(&g, 150, 75, 75, 3).ok());

  core::TrainOptions opt;
  opt.model.num_layers = 2;
  opt.model.hidden_dim = 16;
  opt.fp_mode = core::FpMode::kExact;
  opt.bp_mode = core::BpMode::kExact;
  opt.epochs = 30;
  opt.overlap = true;  // the int8 path lives in the split-phase schedule

  opt.int8_gemm = false;
  auto base = core::TrainDistributed(g, 3, opt);
  ASSERT_TRUE(base.ok()) << base.status();
  opt.int8_gemm = true;
  auto int8 = core::TrainDistributed(g, 3, opt);
  ASSERT_TRUE(int8.ok()) << int8.status();

  EXPECT_NEAR(int8->test_acc_at_best_val, base->test_acc_at_best_val, 0.1)
      << "int8 " << int8->test_acc_at_best_val << " vs float "
      << base->test_acc_at_best_val;
}

}  // namespace
}  // namespace ecg
