#include "dist/param_server.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "tensor/matrix.h"
#include "tensor/nn.h"
#include "tensor/ops.h"

namespace ecg::dist {
namespace {

using tensor::Matrix;

std::vector<ParameterServerGroup::LayerShape> TwoLayerShapes() {
  return {{4, 3}, {3, 2}};
}

TEST(ParamServerTest, InitIsDeterministicGivenSeed) {
  ParameterServerGroup a(TwoLayerShapes(), 2, 1, 0.01f, 99);
  ParameterServerGroup b(TwoLayerShapes(), 2, 1, 0.01f, 99);
  for (size_t l = 0; l < 2; ++l) {
    EXPECT_TRUE(tensor::AllClose(a.weight(l), b.weight(l)));
    EXPECT_TRUE(tensor::AllClose(a.bias(l), b.bias(l)));
  }
  ParameterServerGroup c(TwoLayerShapes(), 2, 1, 0.01f, 100);
  EXPECT_FALSE(tensor::AllClose(a.weight(0), c.weight(0)));
}

TEST(ParamServerTest, PullReturnsShapesAndTraffic) {
  ParameterServerGroup ps(TwoLayerShapes(), 3, 1, 0.01f, 1);
  Matrix w, b;
  const auto t = ps.Pull(1, &w, &b);
  EXPECT_EQ(w.rows(), 3u);
  EXPECT_EQ(w.cols(), 2u);
  EXPECT_EQ(b.cols(), 2u);
  EXPECT_EQ(t.bytes, (3 * 2 + 2) * sizeof(float));
  EXPECT_EQ(t.messages, 3u);  // one slice per server
}

TEST(ParamServerTest, PushAppliesOnceAllWorkersArrive) {
  ParameterServerGroup ps(TwoLayerShapes(), 1, 2, 0.1f, 7);
  const Matrix w0_before = ps.weight(0);

  auto make_grads = [] {
    std::vector<Matrix> dw = {Matrix(4, 3), Matrix(3, 2)};
    std::vector<Matrix> db = {Matrix(1, 3), Matrix(1, 2)};
    dw[0].Fill(0.5f);
    dw[1].Fill(0.5f);
    db[0].Fill(0.5f);
    db[1].Fill(0.5f);
    return std::make_pair(dw, db);
  };

  auto [dw1, db1] = make_grads();
  ps.Push(0, dw1, db1);
  // Only one of two workers pushed: parameters unchanged.
  EXPECT_TRUE(tensor::AllClose(ps.weight(0), w0_before));

  auto [dw2, db2] = make_grads();
  ps.Push(1, dw2, db2);
  EXPECT_FALSE(tensor::AllClose(ps.weight(0), w0_before));
}

TEST(ParamServerTest, SummedPushesMatchLocalAdam) {
  // Two workers each push g/2; the server must apply Adam(g) exactly as a
  // local optimizer seeing the full gradient would.
  const std::vector<ParameterServerGroup::LayerShape> shapes = {{2, 2}};
  ParameterServerGroup ps(shapes, 1, 2, 0.05f, 11);
  Matrix expected = ps.weight(0);

  Matrix full_grad(2, 2, {1.0f, -2.0f, 0.5f, 0.25f});
  tensor::AdamState local;
  for (int step = 0; step < 3; ++step) {
    Matrix half = full_grad;
    tensor::ScaleInPlace(&half, 0.5f);
    std::vector<Matrix> dwa = {half}, dba = {Matrix(1, 2)};
    std::vector<Matrix> dwb = {half}, dbb = {Matrix(1, 2)};
    ps.Push(0, dwa, dba);
    ps.Push(1, dwb, dbb);
    local.Step(full_grad, 0.05f, &expected);
  }
  EXPECT_TRUE(tensor::AllClose(ps.weight(0), expected, 1e-6f));
}

TEST(ParamServerTest, ConcurrentPushesAreSafe) {
  const std::vector<ParameterServerGroup::LayerShape> shapes = {{8, 8}};
  ParameterServerGroup ps(shapes, 2, 4, 0.01f, 3);
  for (int epoch = 0; epoch < 5; ++epoch) {
    std::vector<std::thread> threads;
    for (uint32_t w = 0; w < 4; ++w) {
      threads.emplace_back([&, w] {
        std::vector<Matrix> dw = {Matrix(8, 8)};
        std::vector<Matrix> db = {Matrix(1, 8)};
        dw[0].Fill(0.1f * static_cast<float>(w + 1));
        ps.Push(w, std::move(dw), std::move(db));
      });
    }
    for (auto& t : threads) t.join();
  }
  // Deterministic despite concurrency: re-run sequentially and compare.
  ParameterServerGroup ps2(shapes, 2, 4, 0.01f, 3);
  for (int epoch = 0; epoch < 5; ++epoch) {
    for (uint32_t w = 0; w < 4; ++w) {
      std::vector<Matrix> dw = {Matrix(8, 8)};
      std::vector<Matrix> db = {Matrix(1, 8)};
      dw[0].Fill(0.1f * static_cast<float>(w + 1));
      ps2.Push(w, std::move(dw), std::move(db));
    }
  }
  EXPECT_TRUE(tensor::AllClose(ps.weight(0), ps2.weight(0)));
}

}  // namespace
}  // namespace ecg::dist
