#include "common/bitpack.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace ecg {
namespace {

TEST(BitpackTest, SupportedWidths) {
  EXPECT_TRUE(IsSupportedBitWidth(1));
  EXPECT_TRUE(IsSupportedBitWidth(2));
  EXPECT_TRUE(IsSupportedBitWidth(4));
  EXPECT_TRUE(IsSupportedBitWidth(8));
  EXPECT_TRUE(IsSupportedBitWidth(16));
  EXPECT_FALSE(IsSupportedBitWidth(0));
  EXPECT_FALSE(IsSupportedBitWidth(3));
  EXPECT_FALSE(IsSupportedBitWidth(32));
}

TEST(BitpackTest, PackedWordCount) {
  EXPECT_EQ(PackedWordCount(0, 2), 0u);
  EXPECT_EQ(PackedWordCount(16, 2), 1u);
  EXPECT_EQ(PackedWordCount(17, 2), 2u);
  EXPECT_EQ(PackedWordCount(2, 16), 1u);
  EXPECT_EQ(PackedWordCount(3, 16), 2u);
  EXPECT_EQ(PackedWordCount(32, 1), 1u);
}

TEST(BitpackTest, PaperFigure3Example) {
  // Fig. 3: two 8-dimensional embeddings at 2 bits = one 16-bit mapped
  // value each, concatenated into one 32-bit word.
  std::vector<uint32_t> ids = {2, 1, 1, 0, 0, 1, 2, 1,   // h5's bucket ids
                               3, 2, 0, 1, 2, 3, 0, 2};  // h6's bucket ids
  std::vector<uint32_t> packed;
  ASSERT_TRUE(PackBits(ids, 2, &packed).ok());
  EXPECT_EQ(packed.size(), 1u);
  std::vector<uint32_t> out;
  ASSERT_TRUE(UnpackBits(packed, ids.size(), 2, &out).ok());
  EXPECT_EQ(out, ids);
}

TEST(BitpackTest, WordLayoutIsLittleEndianPerWidth) {
  // Pins the packed layout (value i at bits [(i % per_word) * bits, ...))
  // so the word-at-a-time loops cannot drift from the wire format.
  std::vector<uint32_t> packed;
  ASSERT_TRUE(PackBits({0x11, 0x22, 0x33, 0x44}, 8, &packed).ok());
  ASSERT_EQ(packed.size(), 1u);
  EXPECT_EQ(packed[0], 0x44332211u);

  ASSERT_TRUE(PackBits({0xAAAA, 0x5555}, 16, &packed).ok());
  ASSERT_EQ(packed.size(), 1u);
  EXPECT_EQ(packed[0], 0x5555AAAAu);

  ASSERT_TRUE(PackBits({1, 0, 1, 1}, 1, &packed).ok());
  ASSERT_EQ(packed.size(), 1u);
  EXPECT_EQ(packed[0], 0b1101u);

  // A trailing partial word keeps its unused high bits zero.
  ASSERT_TRUE(PackBits({0x12, 0x34, 0x56, 0x78, 0x9A}, 8, &packed).ok());
  ASSERT_EQ(packed.size(), 2u);
  EXPECT_EQ(packed[0], 0x78563412u);
  EXPECT_EQ(packed[1], 0x0000009Au);
}

TEST(BitpackTest, ValueTooLargeRejected) {
  std::vector<uint32_t> packed;
  EXPECT_EQ(PackBits({4}, 2, &packed).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(PackBits({2}, 1, &packed).code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(PackBits({3}, 2, &packed).ok());
}

TEST(BitpackTest, UnsupportedWidthRejected) {
  std::vector<uint32_t> packed, out;
  EXPECT_EQ(PackBits({1}, 3, &packed).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(UnpackBits({0}, 1, 3, &out).code(), StatusCode::kInvalidArgument);
}

TEST(BitpackTest, TruncatedBufferRejected) {
  std::vector<uint32_t> out;
  EXPECT_EQ(UnpackBits({}, 100, 2, &out).code(), StatusCode::kInvalidArgument);
}

/// Property sweep: random round trips at every width and several lengths.
class BitpackRoundTrip : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(BitpackRoundTrip, RandomValuesSurvive) {
  const int bits = std::get<0>(GetParam());
  const int count = std::get<1>(GetParam());
  Rng rng(bits * 1000 + count);
  const uint32_t max_value = (1u << bits) - 1;
  std::vector<uint32_t> values(count);
  for (auto& v : values) {
    v = static_cast<uint32_t>(rng.NextBelow(max_value + 1));
  }
  std::vector<uint32_t> packed, out;
  ASSERT_TRUE(PackBits(values, bits, &packed).ok());
  EXPECT_EQ(packed.size(), PackedWordCount(count, bits));
  ASSERT_TRUE(UnpackBits(packed, count, bits, &out).ok());
  EXPECT_EQ(out, values);
}

INSTANTIATE_TEST_SUITE_P(
    AllWidths, BitpackRoundTrip,
    ::testing::Combine(::testing::Values(1, 2, 4, 8, 16),
                       ::testing::Values(0, 1, 15, 16, 17, 31, 33, 1024)));

}  // namespace
}  // namespace ecg
