// Figure 9: end-to-end performance = preprocessing time + training time
// to convergence, per system, with EC-Graph's speedup called out (the
// paper annotates the OGBN-Products panel; we run products-sim and
// pubmed-sim).
//
// Preprocessing covers partitioning + plan building (+ ego-net
// materialization and its feature pull for the ML-centered systems, and
// the one-time feature-halo cache for graph-centered systems, which is
// charged to the simulated clock before epoch 0 and therefore shows up in
// the first epoch accounting window here as part of training).
//
// Expected shape: EC-Graph beats Non-cp, DistGNN, DistDGL and AGL
// end-to-end; AliGraph-FG pays an enormous preprocessing+redundancy cost
// on the larger graph.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/trainer.h"
#include "graph/datasets.h"

using ecg::bench::System;

namespace {

struct Row {
  std::string label;
  double preprocess = 0.0;
  double train = 0.0;
  double total() const { return preprocess + train; }
};

}  // namespace

int main(int argc, char** argv) {
  ecg::bench::InitBench(&argc, argv);
  ecg::bench::PrintHeader(
      "Fig. 9 — end-to-end time: preprocessing + training to convergence");
  for (const char* dataset : {"pubmed-sim", "products-sim"}) {
    const auto d = ecg::bench::GetBenchDataset(dataset);
    auto spec = ecg::graph::GetDatasetSpec(dataset);
    spec.status().CheckOk();
    const int layers = spec->default_layers;
    const uint32_t epochs = ecg::bench::ScaledEpochs(d.convergence_epochs);

    std::vector<Row> rows;
    // Non-cp variant of our system (for the paper's Non-cp bar).
    {
      ecg::core::TrainOptions opt;
      opt.model = ecg::bench::ModelFor(dataset, layers);
      opt.epochs = epochs;
      opt.patience = d.patience;
      auto r = ecg::core::TrainDistributed(
          ecg::bench::LoadGraphCached(dataset), ecg::bench::kDefaultWorkers,
          opt);
      r.status().CheckOk();
      rows.push_back({"Non-cp", r->preprocess_seconds,
                      r->ConvergenceSeconds()});
    }
    for (System s :
         {System::kDistGnn, System::kEcGraph, System::kDistDgl,
          System::kAgl, System::kAliGraphFg, System::kEcGraphS}) {
      auto r = ecg::bench::RunSystem(s, dataset, layers, epochs, d.patience);
      r.status().CheckOk();
      rows.push_back({ecg::bench::SystemName(s), r->preprocess_seconds,
                      r->ConvergenceSeconds()});
    }

    double ec_total = 0.0;
    for (const auto& row : rows) {
      if (row.label == "EC-Graph") ec_total = row.total();
    }
    std::printf("\n-- %s (%d-layer) --\n", dataset, layers);
    std::printf("%-12s %12s %12s %12s %10s\n", "system", "preprocess",
                "training", "total", "EC-speedup");
    for (const auto& row : rows) {
      std::printf("%-12s %11ss %11ss %11ss %9.2fx\n", row.label.c_str(),
                  ecg::bench::FormatSeconds(row.preprocess).c_str(),
                  ecg::bench::FormatSeconds(row.train).c_str(),
                  ecg::bench::FormatSeconds(row.total()).c_str(),
                  ec_total > 0 ? row.total() / ec_total : 0.0);
    }
    std::fflush(stdout);
  }
  return 0;
}
