// Table II: algorithm-cost comparison between the ML-centered framework
// and EC-Graph — analytic formulas evaluated on a real replica and
// checked against measured quantities.
//
//   Memory:        O(ḡ^L · d̄)   vs  O(ḡ · d̄)
//   Computation:   O(ḡ^{L-1}·d̄²) vs O(L · d̄²)
//   Communication: O(ḡ^L · d0) once  vs  O(T·L·ḡ_rmt·d̄ / (32/B)) per run
//
// Measured counterparts: ML-centered cached vertices & preprocessing
// bytes (MlCenteredCosts), EC-Graph per-epoch exchanged bytes with and
// without B-bit compression.

#include <cmath>
#include <cstdio>

#include "baselines/ml_centered.h"
#include "bench/bench_util.h"
#include "core/trainer.h"
#include "graph/partition.h"

int main(int argc, char** argv) {
  ecg::bench::InitBench(&argc, argv);
  ecg::bench::PrintHeader(
      "Table II — ML-centered vs EC-Graph costs, measured on pubmed-sim "
      "(2-layer, 6 workers)");
  const char* dataset = "pubmed-sim";
  const ecg::graph::Graph& g = ecg::bench::LoadGraphCached(dataset);
  const int L = 2;
  const double g_bar = g.average_degree();
  const double d_bar = static_cast<double>(g.feature_dim());

  // ML-centered: measure the ego-net blow-up.
  ecg::baselines::MlCenteredOptions ml;
  ml.model = ecg::bench::ModelFor(dataset, L);
  ml.epochs = 2;
  ecg::baselines::MlCenteredCosts costs;
  auto ml_result =
      ecg::baselines::TrainMlCentered(g, ecg::bench::kDefaultWorkers, ml,
                                      &costs);
  ml_result.status().CheckOk();

  // EC-Graph: measure exchanged bytes per epoch, exact vs 2-bit.
  auto run_ec = [&](bool compressed) {
    ecg::core::TrainOptions opt;
    opt.model = ecg::bench::ModelFor(dataset, L);
    if (compressed) {
      opt.fp_mode = ecg::core::FpMode::kReqEc;
      opt.bp_mode = ecg::core::BpMode::kResEc;
      opt.exchange.fp_bits = 2;
      opt.exchange.bp_bits = 2;
    }
    opt.epochs = 3;
    auto r = ecg::core::TrainDistributed(g, ecg::bench::kDefaultWorkers,
                                         opt);
    r.status().CheckOk();
    return r->epochs.back().comm_bytes;  // steady-state epoch
  };
  const uint64_t ec_exact_bytes = run_ec(false);
  const uint64_t ec_2bit_bytes = run_ec(true);

  auto hash = ecg::graph::HashPartition(g, ecg::bench::kDefaultWorkers);
  hash.status().CheckOk();
  const double cut = static_cast<double>(hash->EdgeCut(g));
  const double g_rmt = 2.0 * cut / g.num_vertices();

  std::printf("graph: |V|=%u g-bar=%.2f d0=%zu L=%d g_rmt(hash,6w)=%.2f\n\n",
              g.num_vertices(), g_bar, g.feature_dim(), L, g_rmt);

  std::printf("%-34s %18s %18s\n", "quantity", "ML-centered", "EC-Graph");
  std::printf("%-34s %18.0f %18.0f\n",
              "analytic memory (vertex-features)",
              std::pow(g_bar, L) * d_bar * g.num_vertices(),
              g_bar * d_bar * g.num_vertices());
  std::printf("%-34s %18llu %18llu\n", "measured cached vertices",
              static_cast<unsigned long long>(costs.cached_vertices),
              static_cast<unsigned long long>(g.num_vertices()));
  std::printf("%-34s %18s %18s\n", "measured preprocess pull",
              ecg::bench::FormatBytes(costs.preprocess_bytes).c_str(),
              "(feature halo only)");
  std::printf("%-34s %18s %18s\n", "measured per-epoch worker comm",
              "0 (cached)",
              ecg::bench::FormatBytes(ec_exact_bytes).c_str());
  std::printf("%-34s %18s %18s\n", "  ... with B=2 EC compression", "-",
              ecg::bench::FormatBytes(ec_2bit_bytes).c_str());
  std::printf("%-34s %18s %17.1fx\n", "  compression factor (32/B = 16)",
              "-",
              static_cast<double>(ec_exact_bytes) /
                  static_cast<double>(ec_2bit_bytes));
  std::printf("\nredundancy blow-up: ML-centered caches %.2fx the graph "
              "across 6 workers\n",
              static_cast<double>(costs.cached_vertices) /
                  g.num_vertices());
  return 0;
}
