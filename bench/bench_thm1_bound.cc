// Theorem 1: empirical validation of the ResEC-BP error bound
//   E||δ_{t,l}||² ≤ (1+α)^{L-l} · G² / (1 − α²(1 + 1/ρ)),   ρ > 1,
// which requires α < 1/sqrt(1+ρ) < sqrt(2)/2.
//
// We stream synthetic gradient matrices with bounded norm through the
// B-bit quantizer with error feedback (exactly ResEC-BP's Eqs. 11-12),
// measure the residual ||δ_t||² over time and the quantizer's empirical
// contraction factor α, and compare max_t ||δ_t||² against the bound.
// At B=1 the measured α exceeds sqrt(2)/2 — the theorem's precondition
// fails and the bound is not applicable (reported as such), matching the
// paper's requirement 0 < α < sqrt(2)/2.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/random.h"
#include "common/trace.h"
#include "compress/quantize.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"

using ecg::compress::BucketValueMode;
using ecg::compress::QuantizerOptions;
using ecg::tensor::Matrix;

namespace {

Matrix RandomGradient(ecg::Rng* rng, size_t rows, size_t cols,
                      double target_norm) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng->NextGaussian());
  }
  const double scale = target_norm / std::sqrt(m.SquaredNorm());
  ecg::tensor::ScaleInPlace(&m, static_cast<float>(scale));
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  ecg::obs::InitObservabilityFromArgs(&argc, argv);
  std::printf(
      "\n============================================================\n"
      "Theorem 1 — ResEC-BP residual bound, synthetic gradient streams\n"
      "============================================================\n");
  const size_t rows = 64, cols = 32;
  const int epochs = 200;
  const double g_norm = 1.0;  // E||G||² <= G² with G = 1
  const int L = 3;

  std::printf("%5s %10s %14s %14s %10s\n", "bits", "alpha",
              "max||delta||^2", "bound(l=2)", "verdict");
  for (int bits : {1, 2, 4, 8}) {
    ecg::Rng rng(1000 + bits);
    QuantizerOptions qopts{bits, BucketValueMode::kMidpoint};

    Matrix delta(rows, cols);
    double max_delta_sq = 0.0;
    double max_alpha = 0.0;
    for (int t = 0; t < epochs; ++t) {
      Matrix g = RandomGradient(&rng, rows, cols, g_norm);
      Matrix compensated = g;
      ecg::tensor::AddInPlace(&compensated, delta);
      auto q = ecg::compress::Quantize(compensated, qopts);
      q.status().CheckOk();
      auto decoded = ecg::compress::Dequantize(*q);
      decoded.status().CheckOk();
      // delta_t = (G + delta_{t-1}) - C(G + delta_{t-1})  (Eq. 11)
      delta = compensated;
      ecg::tensor::SubInPlace(&delta, *decoded);
      max_delta_sq = std::max(max_delta_sq, delta.SquaredNorm());
      const double alpha =
          std::sqrt(delta.SquaredNorm() / compensated.SquaredNorm());
      max_alpha = std::max(max_alpha, alpha);
    }

    // Bound with rho chosen so alpha < 1/sqrt(1+rho): rho = 1/alpha² - 1
    // halved for slack, per the proof's free parameter.
    const double alpha = max_alpha;
    const bool applicable = alpha < std::sqrt(2.0) / 2.0;
    double bound = 0.0;
    if (applicable) {
      const double rho = std::max(1.01, 0.5 * (1.0 / (alpha * alpha) - 1.0));
      const int l = 2;
      bound = std::pow(1.0 + alpha, L - l) * g_norm * g_norm /
              (1.0 - alpha * alpha * (1.0 + 1.0 / rho));
    }
    std::printf("%5d %10.4f %14.6f %14.6f %10s\n", bits, alpha,
                max_delta_sq, bound,
                !applicable ? "n/a(a>.71)"
                            : (max_delta_sq <= bound ? "HOLDS" : "VIOLATED"));
  }
  std::printf(
      "\nNote: B=1 exceeds the alpha < sqrt(2)/2 precondition, so Theorem 1\n"
      "does not apply there — consistent with the paper's constraint.\n");
  return 0;
}
