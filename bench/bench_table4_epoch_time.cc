// Table IV: training time per epoch (seconds) for every system on every
// dataset at 2/3/4 layers. Non-sampling systems train full batch;
// sampling systems use the paper's fan-outs (bench_util.cc).
//
// Per-epoch time is the simulated cluster makespan: measured thread-CPU
// compute scaled by the 4-core machine model plus NetworkModel'd
// communication (1 GbE). Expected shape per the paper:
//   * single-machine DGL wins on cora/pubmed (distributed overhead
//     dominates tiny graphs),
//   * EC-Graph beats DistGNN and DGL on the larger graphs,
//   * EC-Graph-S is the fastest distributed configuration throughout,
//   * ML-centered systems degrade sharply with more layers.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

using ecg::bench::System;

int main(int argc, char** argv) {
  ecg::bench::InitBench(&argc, argv);
  ecg::bench::PrintHeader(
      "Table IV — training time per epoch (s), 6 workers, layers 2/3/4");
  std::vector<System> systems = ecg::bench::NonSamplingSystems();
  for (System s : ecg::bench::SamplingSystems()) systems.push_back(s);

  for (const auto& d : ecg::bench::BenchDatasets()) {
    std::printf("\n-- %s --\n", d.name.c_str());
    std::printf("%-12s %10s %10s %10s\n", "system", "2-layer", "3-layer",
                "4-layer");
    for (System s : systems) {
      std::printf("%-12s", ecg::bench::SystemName(s));
      for (int layers : {2, 3, 4}) {
        const uint32_t epochs = ecg::bench::ScaledEpochs(d.timing_epochs);
        auto r = ecg::bench::RunSystem(s, d.name, layers, epochs,
                                       /*patience=*/0);
        r.status().CheckOk();
        std::printf(" %9ss",
                    ecg::bench::FormatSeconds(r->avg_epoch_seconds).c_str());
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  return 0;
}
