#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <map>

#include "common/kernels.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace ecg::bench {

std::vector<BenchDataset> BenchDatasets() {
  // Fig. 8 caption: "2/4/1/2, 4/4/2/2, 8/8/2/4, 16/8/2/2, 8/8/4/4 bits on
  // each dataset for Cp-fp/Cp-bp/ReqEC/ResEC". Table IV "(sampling)" rows
  // give the fan-outs (outermost layer first in the paper's notation; we
  // store them input-layer first).
  // Epoch budgets are sized for this container's single core: the SBM
  // replicas converge within ~15-30 epochs (dataset_report), so the caps
  // below leave headroom while keeping the full bench suite under an hour.
  // fanouts_by_layers is indexed by layer count (entries 0-1 unused);
  // {} means the paper's "(full)" mode.
  std::vector<BenchDataset> datasets;
  datasets.push_back({"cora-sim", 60, 4, 10, 2, 4, 1, 2,
                      {{}, {}, {}, {20, 10, 5}, {10, 5, 5, 5}}});
  datasets.push_back({"pubmed-sim", 50, 4, 10, 4, 4, 2, 2,
                      {{}, {}, {}, {10, 10, 5}, {5, 5, 5, 1}}});
  datasets.push_back({"reddit-sim", 30, 3, 8, 8, 8, 2, 4,
                      {{}, {}, {10, 5}, {5, 2, 2}, {5, 5, 1, 1}}});
  // The paper picks per-dataset bits "such that the models can converge
  // to the near-optimal test accuracy"; on these scaled replicas the two
  // OGB sets need 4/4 and 8/8 where the paper's clusters used 2/2 and 4/4
  // (SBM embeddings tolerate less compression; see EXPERIMENTS.md).
  datasets.push_back({"products-sim", 30, 3, 8, 16, 8, 4, 4,
                      {{}, {}, {20, 5}, {10, 5, 1}, {10, 5, 2, 2}}});
  // papers needs a longer budget: 172 classes over 348 train vertices
  // converge around epoch 40 (dataset_report).
  datasets.push_back({"papers-sim", 60, 3, 0, 8, 8, 8, 8,
                      {{}, {}, {10, 10}, {10, 10, 10}, {10, 10, 10, 10}}});
  return datasets;
}

BenchDataset GetBenchDataset(const std::string& name) {
  for (auto& d : BenchDatasets()) {
    if (d.name == name) return d;
  }
  ECG_CHECK(false) << "unknown bench dataset " << name;
  return {};
}

bool FastMode() {
  const char* env = std::getenv("ECG_BENCH_FAST");
  return env != nullptr && env[0] == '1';
}

uint32_t ScaledEpochs(uint32_t epochs) {
  return FastMode() ? std::max(2u, epochs / 4) : epochs;
}

void InitBench(int* argc, char** argv) {
  obs::InitObservabilityFromArgs(argc, argv);
}

std::string BenchStampJson() {
  char out[160];
  std::snprintf(out, sizeof(out),
                "{\"commit\": \"%s\", \"kernels\": \"%s\", \"threads\": %zu}",
                obs::BuildCommit().c_str(), kern::ActiveName(),
                ThreadPool::Global().num_threads());
  return out;
}

const graph::Graph& LoadGraphCached(const std::string& name) {
  static std::map<std::string, graph::Graph>* cache =
      new std::map<std::string, graph::Graph>();
  auto it = cache->find(name);
  if (it == cache->end()) {
    auto g = graph::LoadDataset(name);
    g.status().CheckOk();
    it = cache->emplace(name, std::move(*g)).first;
  }
  return it->second;
}

core::GcnConfig ModelFor(const std::string& dataset, int layers) {
  auto spec = graph::GetDatasetSpec(dataset);
  spec.status().CheckOk();
  core::GcnConfig model;
  model.num_layers = layers;
  model.hidden_dim = spec->default_hidden;
  return model;
}

const char* SystemName(System system) {
  switch (system) {
    case System::kDgl:
      return "DGL";
    case System::kDistGnn:
      return "DistGNN";
    case System::kEcGraph:
      return "EC-Graph";
    case System::kDistDgl:
      return "DistDGL";
    case System::kAgl:
      return "AGL";
    case System::kAliGraphFg:
      return "AliGraph-FG";
    case System::kEcGraphS:
      return "EC-Graph-S";
  }
  return "?";
}

std::vector<System> NonSamplingSystems() {
  return {System::kDgl, System::kDistGnn, System::kEcGraph};
}

std::vector<System> SamplingSystems() {
  return {System::kDistDgl, System::kAgl, System::kAliGraphFg,
          System::kEcGraphS};
}

Result<core::TrainResult> RunSystem(System system,
                                    const std::string& dataset, int layers,
                                    uint32_t epochs, uint32_t patience,
                                    uint32_t workers) {
  const graph::Graph& g = LoadGraphCached(dataset);
  const BenchDataset d = GetBenchDataset(dataset);
  const core::GcnConfig model = ModelFor(dataset, layers);
  const core::Fanouts fanouts =
      d.fanouts_by_layers[static_cast<size_t>(layers)];

  switch (system) {
    case System::kDgl: {
      baselines::SingleMachineOptions opt;
      opt.model = model;
      opt.epochs = epochs;
      opt.patience = patience;
      return baselines::TrainSingleMachine(g, opt);
    }
    case System::kDistGnn: {
      core::TrainOptions opt;
      opt.model = model;
      opt.fp_mode = core::FpMode::kDelayed;
      opt.bp_mode = core::BpMode::kExact;
      opt.exchange.delay_rounds = 5;  // r = 5 per the original paper
      opt.epochs = epochs;
      opt.patience = patience;
      return core::TrainDistributed(g, workers, opt);
    }
    case System::kEcGraph: {
      core::TrainOptions opt;
      opt.model = model;
      opt.fp_mode = core::FpMode::kReqEc;
      opt.bp_mode = core::BpMode::kResEc;
      opt.exchange.fp_bits = d.req_ec_bits;
      opt.exchange.bp_bits = d.res_ec_bits;
      opt.epochs = epochs;
      opt.patience = patience;
      return core::TrainDistributed(g, workers, opt);
    }
    case System::kDistDgl: {
      core::SamplingTrainOptions opt;
      opt.model = model;
      // "(full)" rows run the sampler with unlimited fan-out (0).
      opt.fanouts = fanouts.empty() ? core::Fanouts(layers, 0) : fanouts;
      opt.fp_mode = core::FpMode::kExact;
      opt.bp_mode = core::BpMode::kExact;
      opt.online_sampling = true;
      opt.epochs = epochs;
      opt.patience = patience;
      return core::TrainSampled(g, workers, opt);
    }
    case System::kAgl: {
      baselines::MlCenteredOptions opt;
      opt.model = model;
      // AGL samples its ego-nets; on "(full)" rows use a mild fan-out so
      // it stays distinguishable from AliGraph-FG's full expansion.
      opt.fanouts = fanouts.empty() ? core::Fanouts(layers, 10) : fanouts;
      opt.epochs = epochs;
      opt.patience = patience;
      ECG_ASSIGN_OR_RETURN(graph::Partition p,
                           graph::HashPartition(g, workers));
      return baselines::TrainMlCentered(g, p, opt);
    }
    case System::kAliGraphFg: {
      baselines::MlCenteredOptions opt;
      opt.model = model;
      opt.epochs = epochs;
      opt.patience = patience;
      ECG_ASSIGN_OR_RETURN(graph::Partition p,
                           graph::HashPartition(g, workers));
      return baselines::TrainMlCentered(g, p, opt);
    }
    case System::kEcGraphS: {
      core::SamplingTrainOptions opt;
      opt.model = model;
      opt.fanouts = fanouts.empty() ? core::Fanouts(layers, 0) : fanouts;
      opt.fp_mode = core::FpMode::kCompressed;
      opt.bp_mode = core::BpMode::kCompressed;
      opt.exchange.fp_bits = 8;  // conservative bits without compensation
      opt.exchange.bp_bits = 8;
      opt.epochs = epochs;
      opt.patience = patience;
      return core::TrainSampled(g, workers, opt);
    }
  }
  return Status::InvalidArgument("unknown system");
}

void PrintHeader(const std::string& title) {
  std::printf("\n============================================================\n");
  std::printf("%s%s\n", title.c_str(),
              FastMode() ? "  [ECG_BENCH_FAST]" : "");
  std::printf("============================================================\n");
}

std::string FormatSeconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds);
  return buf;
}

std::string FormatBytes(uint64_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fMB",
                static_cast<double>(bytes) / (1024.0 * 1024.0));
  return buf;
}

}  // namespace ecg::bench
