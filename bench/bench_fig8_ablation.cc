// Figure 8: ablation study. For every dataset, compare
//   Non-cp       exact FP + exact BP
//   Cp-fp        compression-only FP (per-dataset bits from the paper)
//   Cp-bp        compression-only BP
//   ReqEC        ReqEC-FP (compensated FP)
//   ResEC        ResEC-BP (compensated BP)
//   ReqEC-adapt  ReqEC-FP with the adaptive Bit-Tuner
// reporting the speedup of simulated time-to-convergence over Non-cp
// (histogram bars in the paper) and the converged test accuracy (lines).
//
// Expected shape per the paper: compression WITHOUT compensation is often
// *slower* end-to-end than Non-cp (errors inflate the epoch count), while
// the compensated variants win; speedups shrink on compute-heavy
// high-degree graphs (reddit).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/trainer.h"

using ecg::bench::BenchDataset;
using ecg::bench::kDefaultWorkers;
using ecg::core::BpMode;
using ecg::core::FpMode;
using ecg::core::TrainOptions;

namespace {

struct Variant {
  const char* label;
  FpMode fp;
  BpMode bp;
  bool adaptive;
  /// Which of the dataset's Fig. 8 bit settings applies.
  enum class Bits { kNone, kCpFp, kCpBp, kReqEc, kResEc } bits;
};

TrainOptions MakeOptions(const BenchDataset& d, const Variant& v) {
  TrainOptions opt;
  opt.model = ecg::bench::ModelFor(d.name, 2);
  opt.fp_mode = v.fp;
  opt.bp_mode = v.bp;
  opt.exchange.adaptive_bits = v.adaptive;
  switch (v.bits) {
    case Variant::Bits::kCpFp:
      opt.exchange.fp_bits = d.cp_fp_bits;
      break;
    case Variant::Bits::kCpBp:
      opt.exchange.bp_bits = d.cp_bp_bits;
      break;
    case Variant::Bits::kReqEc:
      opt.exchange.fp_bits = d.req_ec_bits;
      break;
    case Variant::Bits::kResEc:
      opt.exchange.bp_bits = d.res_ec_bits;
      break;
    case Variant::Bits::kNone:
      break;
  }
  opt.epochs = ecg::bench::ScaledEpochs(d.convergence_epochs);
  opt.patience = d.patience;
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  ecg::bench::InitBench(&argc, argv);
  ecg::bench::PrintHeader(
      "Fig. 8 — ablation: compression vs error compensation "
      "(speedup of time-to-convergence over Non-cp; test accuracy)");
  const Variant variants[] = {
      {"Non-cp", FpMode::kExact, BpMode::kExact, false,
       Variant::Bits::kNone},
      {"Cp-fp", FpMode::kCompressed, BpMode::kExact, false,
       Variant::Bits::kCpFp},
      {"Cp-bp", FpMode::kExact, BpMode::kCompressed, false,
       Variant::Bits::kCpBp},
      {"ReqEC", FpMode::kReqEc, BpMode::kExact, false,
       Variant::Bits::kReqEc},
      {"ResEC", FpMode::kExact, BpMode::kResEc, false,
       Variant::Bits::kResEc},
      {"ReqEC-adapt", FpMode::kReqEc, BpMode::kExact, true,
       Variant::Bits::kReqEc},
  };

  // Convergence = first epoch reaching 99.5% of the Non-cp baseline's
  // best validation accuracy — one fixed target per dataset, so a variant
  // that plateaus low cannot fake an early "convergence".
  std::printf("%-13s %-12s %10s %9s %9s %9s %8s\n", "dataset", "variant",
              "conv-time", "speedup", "test-acc", "epochs", "comm");
  for (const auto& d : ecg::bench::BenchDatasets()) {
    const ecg::graph::Graph& g = ecg::bench::LoadGraphCached(d.name);
    double noncp_time = 0.0;
    double target = 0.0;
    for (const Variant& v : variants) {
      auto r = ecg::core::TrainDistributed(g, kDefaultWorkers,
                                           MakeOptions(d, v));
      r.status().CheckOk();
      if (std::string(v.label) == "Non-cp") {
        target = 0.995 * r->best_val_acc;
        noncp_time = r->SecondsToReachVal(target);
      }
      const double conv = r->SecondsToReachVal(target);
      const uint32_t conv_epoch = r->EpochsToReachVal(target);
      if (conv_epoch == UINT32_MAX) {
        std::printf("%-13s %-12s %10s %9s %9.4f %9s %8s\n", d.name.c_str(),
                    v.label, "n/a", "n/a", r->test_acc_at_best_val, "n/a",
                    ecg::bench::FormatBytes(r->total_comm_bytes).c_str());
      } else {
        std::printf("%-13s %-12s %9ss %8.2fx %9.4f %9u %8s\n",
                    d.name.c_str(), v.label,
                    ecg::bench::FormatSeconds(conv).c_str(),
                    noncp_time / conv, r->test_acc_at_best_val, conv_epoch,
                    ecg::bench::FormatBytes(r->total_comm_bytes).c_str());
      }
      std::fflush(stdout);
    }
  }
  return 0;
}
