// Figure 6: convergence of forward-propagation compression with and
// without requesting-end compensation, across bit widths.
//
// For each dataset in {cora-sim, pubmed-sim, reddit-sim} this bench trains
// a 2-layer GCN with:
//   Non-cp       — exact messages,
//   Cp-fp-B      — B-bit compression only,        B in {1, 2, 4, 8}
//   ReqEC-FP-B   — B-bit compression + ReqEC-FP,  B in {1, 2, 4, 8}
// (backward propagation stays exact so only the FP effect is measured,
// matching the paper's setup) and prints test-accuracy curves. Expected
// shape per the paper: low-bit Cp-fp fails to converge on high-degree
// graphs (reddit); ReqEC-FP recovers near-Non-cp accuracy at the same B.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/trainer.h"

using ecg::bench::BenchDataset;
using ecg::bench::kDefaultWorkers;

namespace {

void RunVariant(const ecg::graph::Graph& g, const BenchDataset& d,
                const char* label, ecg::core::FpMode mode, int bits) {
  ecg::core::TrainOptions opt;
  opt.model = ecg::bench::ModelFor(d.name, 2);
  opt.fp_mode = mode;
  opt.bp_mode = ecg::core::BpMode::kExact;
  opt.exchange.fp_bits = bits;
  opt.epochs = ecg::bench::ScaledEpochs(d.convergence_epochs);
  auto r = ecg::core::TrainDistributed(g, kDefaultWorkers, opt);
  r.status().CheckOk();

  std::printf("%-12s %-12s best_test=%.4f best_epoch=%3u comm=%s curve:",
              d.name.c_str(), label, r->test_acc_at_best_val, r->best_epoch,
              ecg::bench::FormatBytes(r->total_comm_bytes).c_str());
  const size_t step = std::max<size_t>(1, r->epochs.size() / 10);
  for (size_t e = 0; e < r->epochs.size(); e += step) {
    std::printf(" %u:%.3f", static_cast<unsigned>(e),
                r->epochs[e].test_acc);
  }
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  ecg::bench::InitBench(&argc, argv);
  ecg::bench::PrintHeader(
      "Fig. 6 — FP compression vs ReqEC-FP across bit widths (2-layer GCN, "
      "6 workers)");
  for (const char* name : {"cora-sim", "pubmed-sim", "reddit-sim"}) {
    const BenchDataset d = ecg::bench::GetBenchDataset(name);
    const ecg::graph::Graph& g = ecg::bench::LoadGraphCached(name);
    RunVariant(g, d, "Non-cp", ecg::core::FpMode::kExact, 32);
    for (int bits : {1, 2, 4, 8}) {
      char label[32];
      std::snprintf(label, sizeof(label), "Cp-fp-%d", bits);
      RunVariant(g, d, label, ecg::core::FpMode::kCompressed, bits);
    }
    for (int bits : {1, 2, 4, 8}) {
      char label[32];
      std::snprintf(label, sizeof(label), "ReqEC-FP-%d", bits);
      RunVariant(g, d, label, ecg::core::FpMode::kReqEc, bits);
    }
  }
  return 0;
}
