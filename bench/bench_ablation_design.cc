// Design-choice ablations beyond the paper's figures (DESIGN.md §7):
//   1. bucket representative value: midpoint (paper's Fig. 3) vs data-mean;
//   2. selector granularity: element vs vertex (paper's pick) vs matrix,
//      trading selector overhead against reconstruction accuracy;
//   3. trend period T_tr sweep around the paper's default 10;
//   4. GCN vs GraphSAGE under identical EC compression (Section V-A says
//      both models "enjoy similar performance improvements").
// All runs: pubmed-sim, 2-layer, 6 workers.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/trainer.h"

using ecg::bench::kDefaultWorkers;
using ecg::core::TrainOptions;

namespace {

void Report(const char* group, const char* label,
            const ecg::core::TrainResult& r) {
  std::printf("%-22s %-14s best_test=%.4f conv_epoch=%3u conv_time=%ss "
              "comm=%s\n",
              group, label, r.test_acc_at_best_val, r.ConvergenceEpoch(),
              ecg::bench::FormatSeconds(r.ConvergenceSeconds()).c_str(),
              ecg::bench::FormatBytes(r.total_comm_bytes).c_str());
  std::fflush(stdout);
}

TrainOptions Base() {
  TrainOptions opt;
  opt.model = ecg::bench::ModelFor("pubmed-sim", 2);
  opt.fp_mode = ecg::core::FpMode::kReqEc;
  opt.bp_mode = ecg::core::BpMode::kResEc;
  opt.exchange.fp_bits = 2;
  opt.exchange.bp_bits = 2;
  opt.epochs = ecg::bench::ScaledEpochs(50);
  opt.patience = 10;
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  ecg::bench::InitBench(&argc, argv);
  ecg::bench::PrintHeader(
      "Design-choice ablations (pubmed-sim, 2-layer, ReqEC+ResEC @ 2 bits)");
  const ecg::graph::Graph& g = ecg::bench::LoadGraphCached("pubmed-sim");

  // 1) bucket value mode.
  for (auto mode : {ecg::compress::BucketValueMode::kMidpoint,
                    ecg::compress::BucketValueMode::kDataMean}) {
    TrainOptions opt = Base();
    opt.exchange.value_mode = mode;
    auto r = ecg::core::TrainDistributed(g, kDefaultWorkers, opt);
    r.status().CheckOk();
    Report("bucket-value",
           mode == ecg::compress::BucketValueMode::kMidpoint ? "midpoint"
                                                             : "data-mean",
           *r);
  }

  // 2) selector granularity.
  for (auto granularity : {ecg::core::SelectorGranularity::kElement,
                           ecg::core::SelectorGranularity::kVertex,
                           ecg::core::SelectorGranularity::kMatrix}) {
    TrainOptions opt = Base();
    opt.exchange.selector = granularity;
    auto r = ecg::core::TrainDistributed(g, kDefaultWorkers, opt);
    r.status().CheckOk();
    const char* label =
        granularity == ecg::core::SelectorGranularity::kElement ? "element"
        : granularity == ecg::core::SelectorGranularity::kVertex
            ? "vertex"
            : "matrix";
    Report("selector", label, *r);
  }

  // 3) trend period.
  for (uint32_t t_tr : {5u, 10u, 20u}) {
    TrainOptions opt = Base();
    opt.exchange.trend_period = t_tr;
    auto r = ecg::core::TrainDistributed(g, kDefaultWorkers, opt);
    r.status().CheckOk();
    char label[16];
    std::snprintf(label, sizeof(label), "T_tr=%u", t_tr);
    Report("trend-period", label, *r);
  }

  // 4) model kind under identical compression.
  for (auto kind : {ecg::core::GnnKind::kGcn, ecg::core::GnnKind::kSage}) {
    TrainOptions opt = Base();
    opt.model.kind = kind;
    auto r = ecg::core::TrainDistributed(g, kDefaultWorkers, opt);
    r.status().CheckOk();
    Report("model", ecg::core::GnnKindName(kind), *r);

    TrainOptions exact = opt;
    exact.fp_mode = ecg::core::FpMode::kExact;
    exact.bp_mode = ecg::core::BpMode::kExact;
    auto re = ecg::core::TrainDistributed(g, kDefaultWorkers, exact);
    re.status().CheckOk();
    char label[32];
    std::snprintf(label, sizeof(label), "%s-exact",
                  ecg::core::GnnKindName(kind));
    Report("model", label, *re);
  }
  return 0;
}
