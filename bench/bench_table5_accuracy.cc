// Table V: converged test accuracy (at the best-validation epoch) per
// system per dataset, at each dataset's default layer count.
//
// Expected shape per the paper: full-batch systems (DGL, EC-Graph) tie
// within noise; DistGNN is a shade lower (stale aggregations); sampling
// systems (DistDGL, AGL, EC-Graph-S) lose a little; the ML-centered
// full-graph AliGraph-FG loses the most on large graphs; papers-sim
// lands near the paper's 44.6% for EC-Graph.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "graph/datasets.h"

using ecg::bench::System;

int main(int argc, char** argv) {
  ecg::bench::InitBench(&argc, argv);
  ecg::bench::PrintHeader(
      "Table V — test accuracy at best validation epoch (default layers)");
  std::vector<System> systems = ecg::bench::NonSamplingSystems();
  for (System s : ecg::bench::SamplingSystems()) systems.push_back(s);

  std::printf("%-12s", "system");
  for (const auto& d : ecg::bench::BenchDatasets()) {
    std::printf(" %12s", d.name.c_str());
  }
  std::printf("\n");

  for (System s : systems) {
    std::printf("%-12s", ecg::bench::SystemName(s));
    for (const auto& d : ecg::bench::BenchDatasets()) {
      auto spec = ecg::graph::GetDatasetSpec(d.name);
      spec.status().CheckOk();
      auto r = ecg::bench::RunSystem(
          s, d.name, spec->default_layers,
          ecg::bench::ScaledEpochs(d.convergence_epochs), d.patience);
      r.status().CheckOk();
      std::printf(" %11.2f%%", 100.0 * r->test_acc_at_best_val);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
