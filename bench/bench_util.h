#ifndef ECGRAPH_BENCH_BENCH_UTIL_H_
#define ECGRAPH_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/ml_centered.h"
#include "baselines/single_machine.h"
#include "core/sampling_trainer.h"
#include "core/trainer.h"
#include "graph/datasets.h"
#include "graph/graph.h"

namespace ecg::bench {

/// Per-dataset experiment knobs shared by the bench binaries: epoch caps
/// sized for this container's single core, the per-dataset bit settings
/// of Fig. 8 ("2/4/1/2" = Cp-fp/Cp-bp/ReqEC/ResEC bits), and Table IV's
/// sampling fan-outs per layer count.
struct BenchDataset {
  std::string name;
  uint32_t convergence_epochs;  // cap for accuracy/convergence runs
  uint32_t timing_epochs;       // epochs for per-epoch-time measurements
  uint32_t patience;
  int cp_fp_bits, cp_bp_bits, req_ec_bits, res_ec_bits;  // Fig. 8 settings
  /// fanouts_by_layers[L] = Table IV "(sampling)" row for an L-layer model
  /// (empty = full batch).
  std::vector<core::Fanouts> fanouts_by_layers;  // index 2..4 used
};

/// The five Table III replicas with their paper-specified settings.
std::vector<BenchDataset> BenchDatasets();

/// Finds one entry by name (aborts on unknown name — bench-only helper).
BenchDataset GetBenchDataset(const std::string& name);

/// Number of workers used throughout Section V ("six machines are used
/// for test except for scalability").
inline constexpr uint32_t kDefaultWorkers = 6;

/// Environment-controlled global scale-down: setting ECG_BENCH_FAST=1
/// halves all epoch budgets (useful for smoke runs).
bool FastMode();
uint32_t ScaledEpochs(uint32_t epochs);

/// Call first in every bench main: strips the shared observability flags
/// (--trace_out / --stats_out / --trace_level / --log_level, or their
/// ECG_* env-var equivalents) so any bench binary can emit a Chrome trace
/// and a stats JSONL of its runs. Telemetry is flushed at process exit.
void InitBench(int* argc, char** argv);

/// One-line JSON object identifying the run environment, embedded as the
/// "stamp" key of every BENCH_*.json a bench binary writes:
///   {"commit": "<git short hash or unknown>",
///    "kernels": "<dispatch-selected kern variant>", "threads": N}
/// Call it at JSON-emission time so a --kernels/ECG_KERNELS override is
/// reflected.
std::string BenchStampJson();

/// Loads a dataset replica, caching across calls within the process.
const graph::Graph& LoadGraphCached(const std::string& name);

/// Default GCN shape for a dataset at a given layer count (hidden width
/// follows Section V-A: 16 for the small sets, 256 for products/papers).
core::GcnConfig ModelFor(const std::string& dataset, int layers);

/// Pretty-printing helpers.
void PrintHeader(const std::string& title);
std::string FormatSeconds(double seconds);
std::string FormatBytes(uint64_t bytes);

/// The systems compared in Tables IV-V and Figs. 9-10, with the exact
/// distributed mechanism each one reproduces (DESIGN.md §6).
enum class System {
  kDgl,        // single machine, full batch (also stands in for PyG)
  kDistGnn,    // delayed remote partial aggregation (r = 5), full batch
  kEcGraph,    // ReqEC-FP + ResEC-BP, full batch (per-dataset bits)
  kDistDgl,    // graph-centered online sampling, exact messages
  kAgl,        // ML-centered, sampled ego-nets
  kAliGraphFg, // ML-centered, full L-hop expansion
  kEcGraphS,   // EC-Graph sampling mode, compressed messages
};

const char* SystemName(System system);

/// Systems in the non-sampling group (top of Table IV) and sampling group.
std::vector<System> NonSamplingSystems();
std::vector<System> SamplingSystems();

/// Runs one system on one dataset with an L-layer model over `epochs`
/// epochs (patience 0 = fixed epoch count). `workers` defaults to the
/// paper's 6-machine test cluster.
Result<core::TrainResult> RunSystem(System system,
                                    const std::string& dataset, int layers,
                                    uint32_t epochs, uint32_t patience,
                                    uint32_t workers = kDefaultWorkers);

}  // namespace ecg::bench

#endif  // ECGRAPH_BENCH_BENCH_UTIL_H_
