// Figure 7: convergence of backward-propagation (embedding-gradient)
// compression with and without responding-end compensation.
//
// Mirrors Fig. 6 with the roles swapped: FP stays exact, BP uses
//   Non-cp / Cp-bp-B / ResEC-BP-B for B in {1, 2, 4}.
// The paper shows a representative subset; we sweep the same three
// datasets as Fig. 6. Expected shape: error feedback restores convergence
// at low B where compression-only plateaus or oscillates.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/trainer.h"

using ecg::bench::BenchDataset;
using ecg::bench::kDefaultWorkers;

namespace {

void RunVariant(const ecg::graph::Graph& g, const BenchDataset& d,
                const char* label, ecg::core::BpMode mode, int bits) {
  ecg::core::TrainOptions opt;
  opt.model = ecg::bench::ModelFor(d.name, 2);
  opt.fp_mode = ecg::core::FpMode::kExact;
  opt.bp_mode = mode;
  opt.exchange.bp_bits = bits;
  opt.epochs = ecg::bench::ScaledEpochs(d.convergence_epochs);
  auto r = ecg::core::TrainDistributed(g, kDefaultWorkers, opt);
  r.status().CheckOk();

  std::printf("%-12s %-12s best_test=%.4f best_epoch=%3u comm=%s curve:",
              d.name.c_str(), label, r->test_acc_at_best_val, r->best_epoch,
              ecg::bench::FormatBytes(r->total_comm_bytes).c_str());
  const size_t step = std::max<size_t>(1, r->epochs.size() / 10);
  for (size_t e = 0; e < r->epochs.size(); e += step) {
    std::printf(" %u:%.3f", static_cast<unsigned>(e),
                r->epochs[e].test_acc);
  }
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  ecg::bench::InitBench(&argc, argv);
  ecg::bench::PrintHeader(
      "Fig. 7 — BP compression vs ResEC-BP across bit widths (2-layer GCN, "
      "6 workers)");
  for (const char* name : {"cora-sim", "pubmed-sim", "reddit-sim"}) {
    const BenchDataset d = ecg::bench::GetBenchDataset(name);
    const ecg::graph::Graph& g = ecg::bench::LoadGraphCached(name);
    RunVariant(g, d, "Non-cp", ecg::core::BpMode::kExact, 32);
    for (int bits : {1, 2, 4}) {
      char label[32];
      std::snprintf(label, sizeof(label), "Cp-bp-%d", bits);
      RunVariant(g, d, label, ecg::core::BpMode::kCompressed, bits);
    }
    for (int bits : {1, 2, 4}) {
      char label[32];
      std::snprintf(label, sizeof(label), "ResEC-BP-%d", bits);
      RunVariant(g, d, label, ecg::core::BpMode::kResEc, bits);
    }
  }
  return 0;
}
