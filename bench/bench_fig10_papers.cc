// Figure 10: results on the largest graph (OGBN-Papers100M in the paper,
// papers-sim here — the paper runs this on its second, beefier cluster of
// 6 x 32-core machines, which we mirror with a 32-core MachineModel).
//
// Reports EC-Graph (full batch) and EC-Graph-S per-epoch time at 2/3/4
// layers plus one convergence run each at 3 layers for accuracy, the two
// rows the paper shows for this dataset (other systems could not run it).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/sampling_trainer.h"
#include "core/trainer.h"

int main(int argc, char** argv) {
  ecg::bench::InitBench(&argc, argv);
  ecg::bench::PrintHeader(
      "Fig. 10 — papers-sim on the 32-core cluster profile");
  const auto d = ecg::bench::GetBenchDataset("papers-sim");
  const ecg::graph::Graph& g = ecg::bench::LoadGraphCached("papers-sim");

  ecg::dist::MachineModel big_machine;
  big_machine.cores = 32;  // Xeon Silver 4110 nodes of cluster 2
  big_machine.parallel_efficiency = 0.7;

  std::printf("%-12s %10s %10s %10s %12s\n", "system", "2-layer", "3-layer",
              "4-layer", "test-acc(3L)");

  // EC-Graph full batch.
  {
    std::printf("%-12s", "EC-Graph");
    for (int layers : {2, 3, 4}) {
      ecg::core::TrainOptions opt;
      opt.model = ecg::bench::ModelFor("papers-sim", layers);
      opt.fp_mode = ecg::core::FpMode::kReqEc;
      opt.bp_mode = ecg::core::BpMode::kResEc;
      opt.exchange.fp_bits = d.req_ec_bits;
      opt.exchange.bp_bits = d.res_ec_bits;
      opt.machine = big_machine;
      opt.epochs = ecg::bench::ScaledEpochs(d.timing_epochs);
      auto r = ecg::core::TrainDistributed(g, ecg::bench::kDefaultWorkers,
                                           opt);
      r.status().CheckOk();
      std::printf(" %9ss",
                  ecg::bench::FormatSeconds(r->avg_epoch_seconds).c_str());
      std::fflush(stdout);
    }
    ecg::core::TrainOptions opt;
    opt.model = ecg::bench::ModelFor("papers-sim", 3);
    opt.fp_mode = ecg::core::FpMode::kReqEc;
    opt.bp_mode = ecg::core::BpMode::kResEc;
    opt.exchange.fp_bits = d.req_ec_bits;
    opt.exchange.bp_bits = d.res_ec_bits;
    opt.machine = big_machine;
    opt.epochs = ecg::bench::ScaledEpochs(d.convergence_epochs);
    opt.patience = 0;  // 172-class val acc reads 0 well past any patience
    auto r = ecg::core::TrainDistributed(g, ecg::bench::kDefaultWorkers,
                                         opt);
    r.status().CheckOk();
    std::printf(" %11.2f%%\n", 100.0 * r->test_acc_at_best_val);
  }

  // EC-Graph-S.
  {
    std::printf("%-12s", "EC-Graph-S");
    for (int layers : {2, 3, 4}) {
      ecg::core::SamplingTrainOptions opt;
      opt.model = ecg::bench::ModelFor("papers-sim", layers);
      opt.fanouts = d.fanouts_by_layers[static_cast<size_t>(layers)];
      opt.machine = big_machine;
      opt.exchange.fp_bits = 8;
      opt.exchange.bp_bits = 8;
      opt.epochs = ecg::bench::ScaledEpochs(d.timing_epochs);
      auto r =
          ecg::core::TrainSampled(g, ecg::bench::kDefaultWorkers, opt);
      r.status().CheckOk();
      std::printf(" %9ss",
                  ecg::bench::FormatSeconds(r->avg_epoch_seconds).c_str());
      std::fflush(stdout);
    }
    ecg::core::SamplingTrainOptions opt;
    opt.model = ecg::bench::ModelFor("papers-sim", 3);
    opt.fanouts = d.fanouts_by_layers[3];
    opt.machine = big_machine;
    opt.exchange.fp_bits = 8;
    opt.exchange.bp_bits = 8;
    opt.epochs = ecg::bench::ScaledEpochs(d.convergence_epochs);
    opt.patience = 0;
    auto r = ecg::core::TrainSampled(g, ecg::bench::kDefaultWorkers, opt);
    r.status().CheckOk();
    std::printf(" %11.2f%%\n", 100.0 * r->test_acc_at_best_val);
  }
  return 0;
}
