// Adaptive bit-allocation gate: per-(layer, peer) solver vs global
// Bit-Tuner (DESIGN.md §16).
//
// Two runs over the same graph and partition, both ReqEC-FP/ResEC-BP:
//   tuner    — the global Bit-Tuner (adapt=on), one width per peer that
//              every layer shares and that grows whenever predictions
//              dominate;
//   bitalloc — the per-(layer, peer) marginal-gain solver (bit_alloc=on),
//              which re-divides a fixed traffic budget across message
//              groups every trend period.
// The gate requires bitalloc to ship >= 20% fewer worker-to-worker bytes
// while staying within 0.1 validation accuracy of the tuner run. Results
// land in BENCH_bitalloc.json (override with --json=PATH); with --gate the
// exit code enforces the bound in CI.
//
// Usage: bench_bitalloc [--dataset=NAME] [--epochs=N] [--json=PATH]
//                       [--gate]

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "core/trainer.h"

using ecg::bench::kDefaultWorkers;

namespace {

struct AllocRow {
  std::string label;
  double best_val_acc = 0.0;
  double sim_seconds = 0.0;
  uint64_t comm_bytes = 0;
  double fp_wire_bytes = 0.0;
  double bp_wire_bytes = 0.0;
};

AllocRow RunOne(const ecg::graph::Graph& g, const std::string& label,
                bool bit_alloc, uint32_t epochs) {
  ecg::core::TrainOptions opt;
  opt.model = ecg::bench::ModelFor("cora-sim", 2);
  opt.fp_mode = ecg::core::FpMode::kReqEc;
  opt.bp_mode = ecg::core::BpMode::kResEc;
  opt.exchange.fp_bits = 2;
  opt.exchange.bp_bits = 2;
  opt.exchange.adaptive_bits = !bit_alloc;
  opt.exchange.bit_alloc = bit_alloc;
  opt.epochs = epochs;

  // Collect in memory only: SumFor gives the cross-epoch halo-byte totals
  // (the traffic the solver budgets) without a JSONL file. Note the
  // fp.wire_bytes total also counts the one-time exact feature-halo
  // shipment (H^0 caching runs before the epoch byte baseline), identical
  // in both runs — the gate compares total_comm_bytes, which excludes it.
  auto& stats = ecg::obs::StatsRegistry::Global();
  stats.Reset();
  stats.Enable();
  auto r = ecg::core::TrainDistributed(g, kDefaultWorkers, opt);
  r.status().CheckOk();
  stats.Disable();

  AllocRow row;
  row.label = label;
  row.best_val_acc = r->best_val_acc;
  row.sim_seconds = r->total_sim_seconds;
  row.comm_bytes = r->total_comm_bytes;
  row.fp_wire_bytes = stats.SumFor("fp.wire_bytes");
  row.bp_wire_bytes = stats.SumFor("bp.wire_bytes");
  stats.Reset();
  return row;
}

void PrintRow(const AllocRow& r) {
  std::printf("%-9s val=%.4f makespan=%-10s comm_mb=%-8.2f "
              "fp_halo_mb=%-8.2f bp_halo_mb=%-8.2f\n",
              r.label.c_str(), r.best_val_acc,
              ecg::bench::FormatSeconds(r.sim_seconds).c_str(),
              r.comm_bytes / (1024.0 * 1024.0),
              r.fp_wire_bytes / (1024.0 * 1024.0),
              r.bp_wire_bytes / (1024.0 * 1024.0));
  std::fflush(stdout);
}

std::string FlagValue(int* argc, char** argv, const char* prefix) {
  std::string value;
  int w = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], prefix, std::strlen(prefix)) == 0) {
      value = argv[i] + std::strlen(prefix);
    } else {
      argv[w++] = argv[i];
    }
  }
  *argc = w;
  return value;
}

bool BoolFlag(int* argc, char** argv, const char* flag) {
  bool present = false;
  int w = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      present = true;
    } else {
      argv[w++] = argv[i];
    }
  }
  *argc = w;
  return present;
}

}  // namespace

int main(int argc, char** argv) {
  ecg::bench::InitBench(&argc, &argv[0]);
  const std::string dataset_flag = FlagValue(&argc, argv, "--dataset=");
  const std::string epochs_flag = FlagValue(&argc, argv, "--epochs=");
  const std::string json_flag = FlagValue(&argc, argv, "--json=");
  const bool gate = BoolFlag(&argc, argv, "--gate");
  const std::string dataset =
      dataset_flag.empty() ? "cora-sim" : dataset_flag;
  const std::string json_path =
      json_flag.empty() ? "BENCH_bitalloc.json" : json_flag;
  const ecg::bench::BenchDataset d = ecg::bench::GetBenchDataset(dataset);
  const uint32_t epochs =
      epochs_flag.empty()
          ? ecg::bench::ScaledEpochs(d.convergence_epochs)
          : static_cast<uint32_t>(std::stoul(epochs_flag));

  ecg::bench::PrintHeader(
      "Bit-allocation gate — per-(layer,peer) solver vs global Bit-Tuner "
      "(" + dataset + ", " + std::to_string(epochs) + " epochs, " +
      std::to_string(kDefaultWorkers) + " workers)");
  const ecg::graph::Graph& g = ecg::bench::LoadGraphCached(dataset);

  const AllocRow tuner = RunOne(g, "tuner", /*bit_alloc=*/false, epochs);
  PrintRow(tuner);
  const AllocRow alloc = RunOne(g, "bitalloc", /*bit_alloc=*/true, epochs);
  PrintRow(alloc);

  const double reduction =
      tuner.comm_bytes > 0
          ? 1.0 - static_cast<double>(alloc.comm_bytes) /
                      static_cast<double>(tuner.comm_bytes)
          : 0.0;
  const double acc_delta = alloc.best_val_acc - tuner.best_val_acc;
  const bool pass = reduction >= 0.20 && std::fabs(acc_delta) <= 0.1;
  std::printf("reduction %.1f%% of tuner wire bytes (gate >= 20%%), "
              "val delta %+.4f (gate |delta| <= 0.1): %s\n",
              reduction * 100.0, acc_delta, pass ? "PASS" : "FAIL");

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "bench_bitalloc: cannot write %s\n",
                 json_path.c_str());
    return 1;
  }
  out << "{\"stamp\":" << ecg::bench::BenchStampJson()
      << ",\"dataset\":\"" << dataset << "\",\"epochs\":" << epochs
      << ",\"tuner_comm_bytes\":" << tuner.comm_bytes
      << ",\"bitalloc_comm_bytes\":" << alloc.comm_bytes
      << ",\"tuner_fp_halo_bytes\":" << tuner.fp_wire_bytes
      << ",\"bitalloc_fp_halo_bytes\":" << alloc.fp_wire_bytes
      << ",\"tuner_bp_halo_bytes\":" << tuner.bp_wire_bytes
      << ",\"bitalloc_bp_halo_bytes\":" << alloc.bp_wire_bytes
      << ",\"tuner_val_acc\":" << tuner.best_val_acc
      << ",\"bitalloc_val_acc\":" << alloc.best_val_acc
      << ",\"reduction\":" << reduction
      << ",\"acc_delta\":" << acc_delta
      << ",\"pass\":" << (pass ? "true" : "false") << "}\n";
  std::printf("wrote %s\n", json_path.c_str());
  return gate && !pass ? 1 : 0;
}
