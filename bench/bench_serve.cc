// Serving-tier bench: open-loop latency/QPS of ecg::serve with a gate.
//
// Trains a small GCN for a few epochs (mirroring a checkpoint to disk the
// way a production job would), then serves per-vertex classification
// queries from that checkpoint under a heavy-tailed, hot-vertex-skewed
// open-loop workload on the simulated serving clock. Two configurations
// run over the identical arrival schedule:
//
//   naive     max_batch=1 — every query is its own inference;
//   coalesced max_batch=32 (default serve spec) — queries are batched by
//             arrival and share neighbourhood work through the embedding
//             cache.
//
// Both produce bit-identical logits (tests/serve_test.cc); this bench
// quantifies what coalescing buys in p50/p99/shed under load. Results land
// in BENCH_serve.json; --gate additionally enforces the latency SLO on the
// coalesced row (p99 <= slo_ms, nothing shed) and makes the exit code
// CI-meaningful.
//
// Usage: bench_serve [--dataset=NAME] [--train_epochs=N] [--serve=SPEC]
//                    [--load=SPEC] [--json=PATH] [--gate]
// plus the shared observability flags (see bench_util.h).

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/trainer.h"
#include "serve/load_gen.h"
#include "serve/server.h"

using ecg::bench::kDefaultWorkers;

namespace {

std::string FlagValue(int* argc, char** argv, const char* prefix) {
  std::string value;
  int w = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], prefix, std::strlen(prefix)) == 0) {
      value = argv[i] + std::strlen(prefix);
    } else {
      argv[w++] = argv[i];
    }
  }
  *argc = w;
  return value;
}

bool HasFlag(int* argc, char** argv, const char* flag) {
  bool found = false;
  int w = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      found = true;
    } else {
      argv[w++] = argv[i];
    }
  }
  *argc = w;
  return found;
}

struct ServeRow {
  std::string label;
  ecg::serve::LoadResult load;
};

void PrintRow(const ServeRow& r) {
  std::printf(
      "%-10s offered=%-6llu served=%-6llu shed=%-5llu qps=%-8.0f "
      "p50=%-7.3fms p99=%-7.3fms batch=%-5.1f hit=%.2f\n",
      r.label.c_str(), static_cast<unsigned long long>(r.load.offered),
      static_cast<unsigned long long>(r.load.served),
      static_cast<unsigned long long>(r.load.shed), r.load.achieved_qps,
      r.load.p50_ms, r.load.p99_ms, r.load.mean_batch,
      r.load.cache_hit_rate);
  std::fflush(stdout);
}

void AppendRowJson(std::ostream& out, const ServeRow& r) {
  out << "{\"label\":\"" << r.label << "\",\"offered\":" << r.load.offered
      << ",\"served\":" << r.load.served << ",\"shed\":" << r.load.shed
      << ",\"batches\":" << r.load.batches
      << ",\"mean_batch\":" << r.load.mean_batch
      << ",\"qps\":" << r.load.achieved_qps
      << ",\"p50_ms\":" << r.load.p50_ms << ",\"p99_ms\":" << r.load.p99_ms
      << ",\"max_ms\":" << r.load.max_ms
      << ",\"cache_hit_rate\":" << r.load.cache_hit_rate
      << ",\"rows_computed\":" << r.load.rows_computed
      << ",\"rows_cached\":" << r.load.rows_cached << "}";
}

}  // namespace

int main(int argc, char** argv) {
  ecg::bench::InitBench(&argc, &argv[0]);
  const std::string dataset_flag = FlagValue(&argc, argv, "--dataset=");
  const std::string epochs_flag = FlagValue(&argc, argv, "--train_epochs=");
  const std::string serve_spec = FlagValue(&argc, argv, "--serve=");
  const std::string load_spec = FlagValue(&argc, argv, "--load=");
  const std::string json_flag = FlagValue(&argc, argv, "--json=");
  const bool gate = HasFlag(&argc, argv, "--gate");

  const std::string dataset =
      dataset_flag.empty() ? "cora-sim" : dataset_flag;
  const uint32_t train_epochs =
      epochs_flag.empty() ? (ecg::bench::FastMode() ? 3u : 10u)
                          : static_cast<uint32_t>(std::stoul(epochs_flag));
  const std::string json_path =
      json_flag.empty() ? "BENCH_serve.json" : json_flag;

  auto serve_opts = ecg::serve::ParseServeOptions(serve_spec);
  serve_opts.status().CheckOk();
  // Default workload: 1.5x the naive (batch=1) capacity of the default
  // gflops model, so the naive row visibly saturates and sheds while
  // coalescing absorbs the same offered load.
  auto workload = ecg::serve::ParseWorkloadOptions(
      load_spec.empty() ? "qps=30000,duration=1" : load_spec);
  workload.status().CheckOk();

  ecg::bench::PrintHeader(
      "Serving tier — open-loop latency/QPS from a trained checkpoint (" +
      dataset + ", " + std::to_string(train_epochs) + " train epochs)");
  const ecg::graph::Graph& g = ecg::bench::LoadGraphCached(dataset);

  // Train briefly, mirroring epoch checkpoints to disk: the serve tier
  // then loads the last one exactly like an out-of-process server would.
  const std::string ckpt_dir = "bench_serve_ckpt";
  std::filesystem::create_directories(ckpt_dir);
  ecg::core::TrainOptions opt;
  opt.model = ecg::bench::ModelFor(dataset, 2);
  opt.fp_mode = ecg::core::FpMode::kReqEc;
  opt.bp_mode = ecg::core::BpMode::kResEc;
  opt.exchange.fp_bits = 4;
  opt.exchange.bp_bits = 4;
  opt.epochs = train_epochs;
  opt.checkpoint_every = 1;
  opt.checkpoint_dir = ckpt_dir;
  auto train = ecg::core::TrainDistributed(g, kDefaultWorkers, opt);
  train.status().CheckOk();
  const std::string ckpt = ckpt_dir + "/checkpoint_latest.bin";
  std::printf("trained %u epochs (val=%.4f), checkpoint at %s\n",
              train_epochs, train->best_val_acc, ckpt.c_str());

  auto run = [&](const char* label, uint32_t max_batch) -> ServeRow {
    ecg::serve::ServeOptions o = *serve_opts;
    o.max_batch = max_batch;
    ecg::serve::InferenceServer server(&g, opt.model, o);
    server.Init().CheckOk();
    server.LoadFromCheckpoint(ckpt).CheckOk();
    auto res = ecg::serve::RunOpenLoop(&server, *workload);
    res.status().CheckOk();
    ServeRow row;
    row.label = label;
    row.load = *res;
    return row;
  };

  std::vector<ServeRow> rows;
  rows.push_back(run("naive", 1));
  PrintRow(rows.back());
  rows.push_back(run("coalesced", serve_opts->max_batch));
  PrintRow(rows.back());
  const ServeRow& coalesced = rows.back();

  const double slo_ms = serve_opts->slo_ms;
  const bool slo_pass = coalesced.load.p99_ms <= slo_ms &&
                        coalesced.load.shed == 0 &&
                        coalesced.load.served > 0;
  std::printf("gate: coalesced p99=%.3fms vs slo=%.1fms, shed=%llu -> %s\n",
              coalesced.load.p99_ms, slo_ms,
              static_cast<unsigned long long>(coalesced.load.shed),
              slo_pass ? "PASS" : "FAIL");

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "bench_serve: cannot write %s\n", json_path.c_str());
    return 1;
  }
  out << "{\"stamp\":" << ecg::bench::BenchStampJson() << ",\"dataset\":\""
      << dataset << "\",\"train_epochs\":" << train_epochs
      << ",\"val_acc\":" << train->best_val_acc
      << ",\"slo_ms\":" << slo_ms
      << ",\"pass\":" << (slo_pass ? "true" : "false") << ",\"rows\":[";
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) out << ",";
    AppendRowJson(out, rows[i]);
  }
  out << "]}\n";
  std::printf("wrote %s\n", json_path.c_str());

  return gate && !slo_pass ? 1 : 0;
}
