// Chaos bench: accuracy and makespan under an escalating fault schedule.
//
// Sweeps message-loss rates (drop + corruption) over EC-Graph's compressed
// training and reports, per rate, the best validation accuracy, the
// simulated makespan, and the fault/degradation counters — quantifying how
// far the prediction-fallback degradation path (DESIGN.md §10) bends
// before it breaks. A final scenario injects a mid-training worker crash
// to measure the checkpoint/restore overhead on the same run.
//
// A second mode (--elastic_gate=PATH) runs the elastic-membership
// straggler scenario instead: one worker computes 2x slower, and the gate
// requires the straggler rebalancer to recover at least half of the
// makespan gap between a static balanced partition and an oracle
// capacity-weighted partition that knew about the slow machine up front.
// Results land in PATH (BENCH_elastic.json); the exit code enforces the
// gate in CI.
//
// Usage: bench_chaos [--dataset=NAME] [--epochs=N] [--json=PATH]
//                    [--elastic_gate=PATH]
// plus the shared observability/fault flags (see --help of ecgraph).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/trainer.h"
#include "dist/elastic.h"
#include "dist/fault.h"

using ecg::bench::kDefaultWorkers;

namespace {

struct ChaosRow {
  std::string label;
  std::string spec;
  double best_val_acc = 0.0;
  double sim_seconds = 0.0;
  uint64_t retried = 0, lost = 0;
  uint64_t nacks = 0, retransmit_bytes = 0;
  uint64_t degraded_fp = 0, degraded_bp = 0;
  uint64_t crashes = 0, restores = 0;
};

ChaosRow RunOne(const ecg::graph::Graph& g, const std::string& label,
                const std::string& spec, uint32_t epochs) {
  ecg::core::TrainOptions opt;
  opt.model = ecg::bench::ModelFor("cora-sim", 2);
  opt.fp_mode = ecg::core::FpMode::kReqEc;
  opt.bp_mode = ecg::core::BpMode::kResEc;
  opt.exchange.fp_bits = 4;
  opt.exchange.bp_bits = 4;
  opt.epochs = epochs;

  ChaosRow row;
  row.label = label;
  row.spec = spec;
  if (spec.empty()) {
    auto r = ecg::core::TrainDistributed(g, kDefaultWorkers, opt);
    r.status().CheckOk();
    row.best_val_acc = r->best_val_acc;
    row.sim_seconds = r->total_sim_seconds;
    return row;
  }

  auto inj = ecg::dist::FaultInjector::Parse(spec);
  inj.status().CheckOk();
  ecg::dist::ScopedFaultInjector scoped(&*inj);
  auto r = ecg::core::TrainDistributed(g, kDefaultWorkers, opt);
  r.status().CheckOk();
  row.best_val_acc = r->best_val_acc;
  row.sim_seconds = r->total_sim_seconds;
  const auto& c = inj->counters();
  row.retried = c.retried.load();
  row.lost = c.lost.load();
  row.nacks = c.nacks.load();
  row.retransmit_bytes = c.retransmit_bytes.load();
  row.degraded_fp = c.degraded_pdt.load() + c.degraded_stale.load();
  row.degraded_bp = c.degraded_resec.load();
  row.crashes = c.crashes.load();
  row.restores = c.restores.load();
  return row;
}

void PrintRow(const ChaosRow& r) {
  std::printf(
      "%-14s val=%.4f makespan=%-10s retried=%-6llu nacks=%-6llu "
      "retx_kb=%-8.1f lost=%-6llu "
      "deg_fp=%-6llu deg_bp=%-6llu crashes=%llu restores=%llu\n",
      r.label.c_str(), r.best_val_acc,
      ecg::bench::FormatSeconds(r.sim_seconds).c_str(),
      static_cast<unsigned long long>(r.retried),
      static_cast<unsigned long long>(r.nacks),
      r.retransmit_bytes / 1024.0,
      static_cast<unsigned long long>(r.lost),
      static_cast<unsigned long long>(r.degraded_fp),
      static_cast<unsigned long long>(r.degraded_bp),
      static_cast<unsigned long long>(r.crashes),
      static_cast<unsigned long long>(r.restores));
  std::fflush(stdout);
}

void WriteJson(const std::string& path, const std::vector<ChaosRow>& rows) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_chaos: cannot write %s\n", path.c_str());
    return;
  }
  for (const ChaosRow& r : rows) {
    out << "{\"label\":\"" << r.label << "\",\"spec\":\"" << r.spec
        << "\",\"best_val_acc\":" << r.best_val_acc
        << ",\"sim_seconds\":" << r.sim_seconds
        << ",\"retried\":" << r.retried << ",\"nacks\":" << r.nacks
        << ",\"retransmit_bytes\":" << r.retransmit_bytes
        << ",\"lost\":" << r.lost
        << ",\"degraded_fp\":" << r.degraded_fp
        << ",\"degraded_bp\":" << r.degraded_bp
        << ",\"crashes\":" << r.crashes << ",\"restores\":" << r.restores
        << "}\n";
  }
  std::printf("wrote %zu rows to %s\n", rows.size(), path.c_str());
}

// ---- Elastic straggler gate -----------------------------------------------
// Three runs over the same graph, worker 3 persistently 2x slower:
//   static  — balanced streaming partition, no elastic response (what a
//             fixed-membership job suffers);
//   elastic — same starting partition, straggler rebalancer on;
//   oracle  — capacity-weighted streaming partition that knew about the
//             slow machine up front (the static lower bound).
// recovery = (static − elastic) / (static − oracle) on total simulated
// makespan; the gate passes at recovery >= 0.5.
int RunElasticGate(const ecg::graph::Graph& g, uint32_t epochs,
                   const std::string& json_path) {
  const uint32_t workers = kDefaultWorkers;
  const uint32_t slow_worker = 3;
  const double slow_scale = 2.0;

  ecg::core::TrainOptions opt;
  opt.model = ecg::bench::ModelFor("cora-sim", 2);
  opt.fp_mode = ecg::core::FpMode::kReqEc;
  opt.bp_mode = ecg::core::BpMode::kResEc;
  opt.exchange.fp_bits = 4;
  opt.exchange.bp_bits = 4;
  opt.epochs = epochs;
  // Single-core machine model: the straggler's extra compute is not hidden
  // behind intra-node parallelism, so its slowdown lands on the makespan
  // the way it would on the paper's smallest machines.
  opt.machine.cores = 1;
  opt.worker_compute_scale.assign(workers, 1.0);
  opt.worker_compute_scale[slow_worker] = slow_scale;

  auto run = [&](const ecg::graph::Partition& part,
                 const std::string& elastic) {
    ecg::core::TrainOptions o = opt;
    o.elastic = elastic;
    ecg::core::DistributedTrainer trainer(g, part, o);
    auto r = trainer.Train();
    r.status().CheckOk();
    return *r;
  };

  auto base = ecg::graph::StreamingPartition(g, workers);
  base.status().CheckOk();
  ecg::graph::StreamingOptions oracle_opts;
  oracle_opts.part_capacity.assign(workers, 1.0);
  oracle_opts.part_capacity[slow_worker] = 1.0 / slow_scale;
  auto oracle_part = ecg::graph::StreamingPartition(g, workers, oracle_opts);
  oracle_part.status().CheckOk();

  const auto r_static = run(*base, "");
  const auto r_elastic =
      run(*base,
          "rebalance=on,threshold=1.3,hysteresis=2,cooldown=3,budget=0.5,"
          "downtime=0.01");
  const auto r_oracle = run(*oracle_part, "");

  uint64_t migrations = 0, moved_rows = 0;
  for (const auto& e : ecg::elastic::MembershipLog::Global().Snapshot()) {
    if (e.kind == "rebalance") {
      migrations++;
      moved_rows += e.moved_rows;
    }
  }

  const double gap =
      r_static.total_sim_seconds - r_oracle.total_sim_seconds;
  const double recovered =
      r_static.total_sim_seconds - r_elastic.total_sim_seconds;
  const double recovery = gap > 0.0 ? recovered / gap : 1.0;
  const bool pass = recovery >= 0.5;

  std::printf("static   makespan=%s val=%.4f\n",
              ecg::bench::FormatSeconds(r_static.total_sim_seconds).c_str(),
              r_static.best_val_acc);
  std::printf("elastic  makespan=%s val=%.4f (migrations=%llu rows=%llu)\n",
              ecg::bench::FormatSeconds(r_elastic.total_sim_seconds).c_str(),
              r_elastic.best_val_acc,
              static_cast<unsigned long long>(migrations),
              static_cast<unsigned long long>(moved_rows));
  std::printf("oracle   makespan=%s val=%.4f\n",
              ecg::bench::FormatSeconds(r_oracle.total_sim_seconds).c_str(),
              r_oracle.best_val_acc);
  std::printf("recovery %.3f of the static->oracle gap (gate >= 0.5): %s\n",
              recovery, pass ? "PASS" : "FAIL");

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "bench_chaos: cannot write %s\n",
                 json_path.c_str());
    return 1;
  }
  out << "{\"stamp\":" << ecg::bench::BenchStampJson()
      << ",\"scenario\":\"2x_slow_worker\",\"epochs\":" << epochs
      << ",\"slow_worker\":" << slow_worker
      << ",\"slow_scale\":" << slow_scale
      << ",\"static_seconds\":" << r_static.total_sim_seconds
      << ",\"elastic_seconds\":" << r_elastic.total_sim_seconds
      << ",\"oracle_seconds\":" << r_oracle.total_sim_seconds
      << ",\"static_val_acc\":" << r_static.best_val_acc
      << ",\"elastic_val_acc\":" << r_elastic.best_val_acc
      << ",\"migrations\":" << migrations
      << ",\"moved_rows\":" << moved_rows << ",\"recovery\":" << recovery
      << ",\"pass\":" << (pass ? "true" : "false") << "}\n";
  std::printf("wrote %s\n", json_path.c_str());
  return pass ? 0 : 1;
}

std::string FlagValue(int* argc, char** argv, const char* prefix) {
  std::string value;
  int w = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], prefix, std::strlen(prefix)) == 0) {
      value = argv[i] + std::strlen(prefix);
    } else {
      argv[w++] = argv[i];
    }
  }
  *argc = w;
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  ecg::bench::InitBench(&argc, &argv[0]);
  const std::string dataset_flag = FlagValue(&argc, argv, "--dataset=");
  const std::string epochs_flag = FlagValue(&argc, argv, "--epochs=");
  const std::string json_path = FlagValue(&argc, argv, "--json=");
  const std::string elastic_gate = FlagValue(&argc, argv, "--elastic_gate=");
  const std::string dataset =
      dataset_flag.empty() ? "cora-sim" : dataset_flag;
  const ecg::bench::BenchDataset d = ecg::bench::GetBenchDataset(dataset);
  const uint32_t epochs =
      epochs_flag.empty()
          ? ecg::bench::ScaledEpochs(d.convergence_epochs)
          : static_cast<uint32_t>(std::stoul(epochs_flag));

  if (!elastic_gate.empty()) {
    ecg::bench::PrintHeader(
        "Elastic straggler gate — 2x slow worker, rebalanced vs static vs "
        "oracle (" + dataset + ", " + std::to_string(epochs) +
        " epochs, 6 workers)");
    return RunElasticGate(ecg::bench::LoadGraphCached(dataset), epochs,
                          elastic_gate);
  }

  ecg::bench::PrintHeader(
      "Chaos sweep — ReqEC/ResEC accuracy and makespan vs fault rate (" +
      dataset + ", " + std::to_string(epochs) + " epochs, 6 workers)");
  const ecg::graph::Graph& g = ecg::bench::LoadGraphCached(dataset);

  std::vector<ChaosRow> rows;
  rows.push_back(RunOne(g, "fault-free", "", epochs));
  PrintRow(rows.back());
  for (double p : {0.01, 0.02, 0.05, 0.10, 0.20}) {
    char spec[96], label[32];
    std::snprintf(spec, sizeof(spec),
                  "drop=%.3f,corrupt=%.3f,seed=7,retries=2", p, p / 5.0);
    std::snprintf(label, sizeof(label), "loss=%.0f%%", p * 100.0);
    rows.push_back(RunOne(g, label, spec, epochs));
    PrintRow(rows.back());
  }
  // Crash scenario: one worker dies mid-run; every epoch checkpoints and
  // the restore replays from the latest one. The makespan delta against
  // the fault-free row is the full recovery cost.
  {
    char spec[96];
    std::snprintf(spec, sizeof(spec), "crash@epoch=%u:worker=1,restart=5",
                  epochs / 2);
    rows.push_back(RunOne(g, "crash@mid", spec, epochs));
    PrintRow(rows.back());
  }

  if (!json_path.empty()) WriteJson(json_path, rows);
  return 0;
}
