// Chaos bench: accuracy and makespan under an escalating fault schedule.
//
// Sweeps message-loss rates (drop + corruption) over EC-Graph's compressed
// training and reports, per rate, the best validation accuracy, the
// simulated makespan, and the fault/degradation counters — quantifying how
// far the prediction-fallback degradation path (DESIGN.md §10) bends
// before it breaks. A final scenario injects a mid-training worker crash
// to measure the checkpoint/restore overhead on the same run.
//
// Usage: bench_chaos [--dataset=NAME] [--epochs=N] [--json=PATH]
// plus the shared observability/fault flags (see --help of ecgraph).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/trainer.h"
#include "dist/fault.h"

using ecg::bench::kDefaultWorkers;

namespace {

struct ChaosRow {
  std::string label;
  std::string spec;
  double best_val_acc = 0.0;
  double sim_seconds = 0.0;
  uint64_t retried = 0, lost = 0;
  uint64_t nacks = 0, retransmit_bytes = 0;
  uint64_t degraded_fp = 0, degraded_bp = 0;
  uint64_t crashes = 0, restores = 0;
};

ChaosRow RunOne(const ecg::graph::Graph& g, const std::string& label,
                const std::string& spec, uint32_t epochs) {
  ecg::core::TrainOptions opt;
  opt.model = ecg::bench::ModelFor("cora-sim", 2);
  opt.fp_mode = ecg::core::FpMode::kReqEc;
  opt.bp_mode = ecg::core::BpMode::kResEc;
  opt.exchange.fp_bits = 4;
  opt.exchange.bp_bits = 4;
  opt.epochs = epochs;

  ChaosRow row;
  row.label = label;
  row.spec = spec;
  if (spec.empty()) {
    auto r = ecg::core::TrainDistributed(g, kDefaultWorkers, opt);
    r.status().CheckOk();
    row.best_val_acc = r->best_val_acc;
    row.sim_seconds = r->total_sim_seconds;
    return row;
  }

  auto inj = ecg::dist::FaultInjector::Parse(spec);
  inj.status().CheckOk();
  ecg::dist::ScopedFaultInjector scoped(&*inj);
  auto r = ecg::core::TrainDistributed(g, kDefaultWorkers, opt);
  r.status().CheckOk();
  row.best_val_acc = r->best_val_acc;
  row.sim_seconds = r->total_sim_seconds;
  const auto& c = inj->counters();
  row.retried = c.retried.load();
  row.lost = c.lost.load();
  row.nacks = c.nacks.load();
  row.retransmit_bytes = c.retransmit_bytes.load();
  row.degraded_fp = c.degraded_pdt.load() + c.degraded_stale.load();
  row.degraded_bp = c.degraded_resec.load();
  row.crashes = c.crashes.load();
  row.restores = c.restores.load();
  return row;
}

void PrintRow(const ChaosRow& r) {
  std::printf(
      "%-14s val=%.4f makespan=%-10s retried=%-6llu nacks=%-6llu "
      "retx_kb=%-8.1f lost=%-6llu "
      "deg_fp=%-6llu deg_bp=%-6llu crashes=%llu restores=%llu\n",
      r.label.c_str(), r.best_val_acc,
      ecg::bench::FormatSeconds(r.sim_seconds).c_str(),
      static_cast<unsigned long long>(r.retried),
      static_cast<unsigned long long>(r.nacks),
      r.retransmit_bytes / 1024.0,
      static_cast<unsigned long long>(r.lost),
      static_cast<unsigned long long>(r.degraded_fp),
      static_cast<unsigned long long>(r.degraded_bp),
      static_cast<unsigned long long>(r.crashes),
      static_cast<unsigned long long>(r.restores));
  std::fflush(stdout);
}

void WriteJson(const std::string& path, const std::vector<ChaosRow>& rows) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_chaos: cannot write %s\n", path.c_str());
    return;
  }
  for (const ChaosRow& r : rows) {
    out << "{\"label\":\"" << r.label << "\",\"spec\":\"" << r.spec
        << "\",\"best_val_acc\":" << r.best_val_acc
        << ",\"sim_seconds\":" << r.sim_seconds
        << ",\"retried\":" << r.retried << ",\"nacks\":" << r.nacks
        << ",\"retransmit_bytes\":" << r.retransmit_bytes
        << ",\"lost\":" << r.lost
        << ",\"degraded_fp\":" << r.degraded_fp
        << ",\"degraded_bp\":" << r.degraded_bp
        << ",\"crashes\":" << r.crashes << ",\"restores\":" << r.restores
        << "}\n";
  }
  std::printf("wrote %zu rows to %s\n", rows.size(), path.c_str());
}

std::string FlagValue(int* argc, char** argv, const char* prefix) {
  std::string value;
  int w = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], prefix, std::strlen(prefix)) == 0) {
      value = argv[i] + std::strlen(prefix);
    } else {
      argv[w++] = argv[i];
    }
  }
  *argc = w;
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  ecg::bench::InitBench(&argc, &argv[0]);
  const std::string dataset_flag = FlagValue(&argc, argv, "--dataset=");
  const std::string epochs_flag = FlagValue(&argc, argv, "--epochs=");
  const std::string json_path = FlagValue(&argc, argv, "--json=");
  const std::string dataset =
      dataset_flag.empty() ? "cora-sim" : dataset_flag;
  const ecg::bench::BenchDataset d = ecg::bench::GetBenchDataset(dataset);
  const uint32_t epochs =
      epochs_flag.empty()
          ? ecg::bench::ScaledEpochs(d.convergence_epochs)
          : static_cast<uint32_t>(std::stoul(epochs_flag));

  ecg::bench::PrintHeader(
      "Chaos sweep — ReqEC/ResEC accuracy and makespan vs fault rate (" +
      dataset + ", " + std::to_string(epochs) + " epochs, 6 workers)");
  const ecg::graph::Graph& g = ecg::bench::LoadGraphCached(dataset);

  std::vector<ChaosRow> rows;
  rows.push_back(RunOne(g, "fault-free", "", epochs));
  PrintRow(rows.back());
  for (double p : {0.01, 0.02, 0.05, 0.10, 0.20}) {
    char spec[96], label[32];
    std::snprintf(spec, sizeof(spec),
                  "drop=%.3f,corrupt=%.3f,seed=7,retries=2", p, p / 5.0);
    std::snprintf(label, sizeof(label), "loss=%.0f%%", p * 100.0);
    rows.push_back(RunOne(g, label, spec, epochs));
    PrintRow(rows.back());
  }
  // Crash scenario: one worker dies mid-run; every epoch checkpoints and
  // the restore replays from the latest one. The makespan delta against
  // the fault-free row is the full recovery cost.
  {
    char spec[96];
    std::snprintf(spec, sizeof(spec), "crash@epoch=%u:worker=1,restart=5",
                  epochs / 2);
    rows.push_back(RunOne(g, "crash@mid", spec, epochs));
    PrintRow(rows.back());
  }

  if (!json_path.empty()) WriteJson(json_path, rows);
  return 0;
}
