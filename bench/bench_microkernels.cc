// Micro-kernel throughput (google-benchmark): the hot inner loops behind
// every experiment — bucket quantization at each bit width, bit packing,
// SpMM over an SBM adjacency, GEMM at GCN-typical shapes, and the wire
// round trip. Useful for spotting kernel regressions independently of the
// end-to-end harnesses.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/bitpack.h"
#include "common/bytes.h"
#include "common/trace.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "compress/quantize.h"
#include "graph/generator.h"
#include "tensor/csr.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace {

using ecg::compress::BucketValueMode;
using ecg::compress::QuantizerOptions;
using ecg::tensor::Matrix;

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  ecg::Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

void BM_Quantize(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const Matrix m = RandomMatrix(1024, 128, 1);
  QuantizerOptions opts{bits, BucketValueMode::kMidpoint};
  for (auto _ : state) {
    auto q = ecg::compress::Quantize(m, opts);
    benchmark::DoNotOptimize(q);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          m.size() * sizeof(float));
}
BENCHMARK(BM_Quantize)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_Dequantize(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const Matrix m = RandomMatrix(1024, 128, 2);
  auto q = ecg::compress::Quantize(
      m, QuantizerOptions{bits, BucketValueMode::kMidpoint});
  q.status().CheckOk();
  for (auto _ : state) {
    auto d = ecg::compress::Dequantize(*q);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          m.size() * sizeof(float));
}
BENCHMARK(BM_Dequantize)->Arg(2)->Arg(8);

void BM_PackBits(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  ecg::Rng rng(3);
  std::vector<uint32_t> values(1 << 16);
  for (auto& v : values) v = static_cast<uint32_t>(rng.NextBelow(1u << bits));
  std::vector<uint32_t> packed;
  for (auto _ : state) {
    ecg::PackBits(values, bits, &packed).CheckOk();
    benchmark::DoNotOptimize(packed);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          values.size());
}
BENCHMARK(BM_PackBits)->Arg(2)->Arg(8);

void BM_UnpackBits(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  ecg::Rng rng(4);
  std::vector<uint32_t> values(1 << 16);
  for (auto& v : values) v = static_cast<uint32_t>(rng.NextBelow(1u << bits));
  std::vector<uint32_t> packed;
  ecg::PackBits(values, bits, &packed).CheckOk();
  std::vector<uint32_t> unpacked;
  for (auto _ : state) {
    ecg::UnpackBits(packed, values.size(), bits, &unpacked).CheckOk();
    benchmark::DoNotOptimize(unpacked);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          values.size());
}
BENCHMARK(BM_UnpackBits)->Arg(2)->Arg(8);

// The fused quantize+dequantize round trip at 1 thread (serial mode, as
// inside a simulated worker) vs the global pool. Args: {bits, pool}.
void BM_QuantizeRoundTripFused(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const bool use_pool = state.range(1) != 0;
  const Matrix m = RandomMatrix(4096, 128, 10);
  QuantizerOptions opts{bits, BucketValueMode::kMidpoint};
  ecg::ThreadPool::SetSerialMode(!use_pool);
  for (auto _ : state) {
    auto q = ecg::compress::Quantize(m, opts);
    auto d = ecg::compress::Dequantize(*q);
    benchmark::DoNotOptimize(d);
  }
  ecg::ThreadPool::SetSerialMode(false);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          m.size() * sizeof(float));
}
BENCHMARK(BM_QuantizeRoundTripFused)
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({8, 0})
    ->Args({8, 1});

void BM_SpMM(benchmark::State& state) {
  ecg::graph::SbmConfig cfg;
  cfg.num_vertices = 4000;
  cfg.num_classes = 8;
  cfg.avg_degree = 16.0;
  cfg.feature_dim = 4;
  cfg.seed = 5;
  auto g = ecg::graph::GenerateSbm(cfg);
  g.status().CheckOk();
  std::vector<std::tuple<uint32_t, uint32_t, float>> trips;
  for (uint32_t v = 0; v < g->num_vertices(); ++v) {
    for (uint32_t u : g->Neighbors(v)) {
      trips.emplace_back(v, u, g->NormWeight(v, u));
    }
  }
  auto adj = ecg::tensor::CsrMatrix::FromTriplets(g->num_vertices(),
                                                  g->num_vertices(), trips);
  adj.status().CheckOk();
  const Matrix x = RandomMatrix(g->num_vertices(), 64, 6);
  Matrix y;
  for (auto _ : state) {
    adj->SpMM(x, &y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          adj->nnz() * 64);
}
BENCHMARK(BM_SpMM);

void BM_Gemm(benchmark::State& state) {
  const size_t hidden = static_cast<size_t>(state.range(0));
  const Matrix a = RandomMatrix(4096, 128, 7);
  const Matrix b = RandomMatrix(128, hidden, 8);
  Matrix c;
  for (auto _ : state) {
    ecg::tensor::Gemm(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 4096 *
                          128 * hidden);
}
BENCHMARK(BM_Gemm)->Arg(16)->Arg(256);

void BM_WireRoundTrip(benchmark::State& state) {
  const Matrix m = RandomMatrix(512, 128, 9);
  auto q = ecg::compress::Quantize(
      m, QuantizerOptions{2, BucketValueMode::kMidpoint});
  q.status().CheckOk();
  for (auto _ : state) {
    std::vector<uint8_t> buf;
    ecg::ByteWriter w(&buf);
    q->AppendTo(&w);
    ecg::ByteReader r(buf);
    ecg::compress::QuantizedMatrix parsed;
    ecg::compress::QuantizedMatrix::ParseFrom(&r, &parsed).CheckOk();
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_WireRoundTrip);

// ---------------------------------------------------------------------------
// --compress_json mode: before/after comparison for the fused compression
// kernels. The "seed" reference below replicates the pre-fusion pipeline
// byte-for-byte: two-pass minmax + divide, an intermediate bucket-id
// vector, element-at-a-time PackBits/UnpackBits, and a separate lookup
// pass. It is timed single-threaded (the seed kernels had no threading).
// ---------------------------------------------------------------------------

struct SeedQuantized {
  uint32_t rows = 0, cols = 0;
  int bits = 0;
  float min_value = 0.0f, bucket_width = 0.0f;
  std::vector<float> bucket_values;
  std::vector<uint32_t> packed_ids;
};

SeedQuantized SeedQuantize(const Matrix& m, int bits) {
  const size_t count = m.size();
  const uint32_t num_buckets = 1u << bits;
  const auto [pmn, pmx] =
      std::minmax_element(m.data(), m.data() + count);
  const float mn = *pmn;
  const float range = *pmx - mn;
  const float width =
      range > 0.0f ? range / static_cast<float>(num_buckets) : 1.0f;
  std::vector<uint32_t> ids(count);
  const float* data = m.data();
  for (size_t i = 0; i < count; ++i) {
    const float rel = (data[i] - mn) / width;
    uint32_t id = rel <= 0.0f ? 0u : static_cast<uint32_t>(rel);
    ids[i] = std::min(id, num_buckets - 1);
  }
  SeedQuantized q;
  q.rows = static_cast<uint32_t>(m.rows());
  q.cols = static_cast<uint32_t>(m.cols());
  q.bits = bits;
  q.min_value = mn;
  q.bucket_width = width;
  q.bucket_values.resize(num_buckets);
  for (uint32_t b = 0; b < num_buckets; ++b) {
    q.bucket_values[b] = mn + width * (static_cast<float>(b) + 0.5f);
  }
  ecg::PackBits(ids, bits, &q.packed_ids).CheckOk();
  return q;
}

Matrix SeedDequantize(const SeedQuantized& q) {
  const size_t count = static_cast<size_t>(q.rows) * q.cols;
  std::vector<uint32_t> ids;
  ecg::UnpackBits(q.packed_ids, count, q.bits, &ids).CheckOk();
  Matrix out(q.rows, q.cols);
  float* data = out.data();
  for (size_t i = 0; i < count; ++i) data[i] = q.bucket_values[ids[i]];
  return out;
}

/// Wall time of the best of `reps` runs of fn, in milliseconds.
template <typename Fn>
double BestOfMs(int reps, const Fn& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    best = std::min(best, ms);
  }
  return best;
}

int RunCompressComparison(const std::string& json_path) {
  // Size the pool before its first use; an explicit ECG_THREADS wins.
  setenv("ECG_THREADS", "8", /*overwrite=*/0);
  const size_t threads = ecg::ThreadPool::Global().num_threads();

  constexpr size_t kRows = 4096, kCols = 128;
  constexpr int kReps = 20;
  const Matrix m = RandomMatrix(kRows, kCols, 11);

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  out << "{\n  \"matrix\": {\"rows\": " << kRows << ", \"cols\": " << kCols
      << "},\n  \"threads\": " << threads << ",\n  \"reps\": " << kReps
      << ",\n  \"configs\": [";

  bool first = true;
  for (int bits : {2, 8}) {
    QuantizerOptions opts{bits, BucketValueMode::kMidpoint};
    // Warm up every variant once before timing.
    SeedDequantize(SeedQuantize(m, bits));
    ecg::compress::Dequantize(*ecg::compress::Quantize(m, opts)).ok();

    const double seed_ms = BestOfMs(kReps, [&] {
      const Matrix d = SeedDequantize(SeedQuantize(m, bits));
      benchmark::DoNotOptimize(d.data());
    });
    ecg::ThreadPool::SetSerialMode(true);
    const double fused1_ms = BestOfMs(kReps, [&] {
      auto d = ecg::compress::Dequantize(*ecg::compress::Quantize(m, opts));
      benchmark::DoNotOptimize(d->data());
    });
    ecg::ThreadPool::SetSerialMode(false);
    const double fusedn_ms = BestOfMs(kReps, [&] {
      auto d = ecg::compress::Dequantize(*ecg::compress::Quantize(m, opts));
      benchmark::DoNotOptimize(d->data());
    });

    out << (first ? "" : ",") << "\n    {\"bits\": " << bits
        << ",\n     \"seed_roundtrip_ms\": " << seed_ms
        << ",\n     \"fused_1thread_roundtrip_ms\": " << fused1_ms
        << ",\n     \"fused_" << threads
        << "thread_roundtrip_ms\": " << fusedn_ms
        << ",\n     \"speedup_fused_1thread_vs_seed\": " << seed_ms / fused1_ms
        << ",\n     \"speedup_fused_" << threads
        << "thread_vs_seed\": " << seed_ms / fusedn_ms << "}";
    first = false;
    std::printf(
        "bits=%d  seed %.3f ms | fused x1 %.3f ms (%.2fx) | fused x%zu "
        "%.3f ms (%.2fx)\n",
        bits, seed_ms, fused1_ms, seed_ms / fused1_ms, threads, fusedn_ms,
        seed_ms / fusedn_ms);
  }
  out << "\n  ]\n}\n";
  return 0;
}

// ---------------------------------------------------------------------------
// --trace_overhead mode: cost of the observability hooks on the fused
// quantize round trip. Three variants of the same loop:
//   * bare      — no tracing hooks at all (reference);
//   * disabled  — the round trip wrapped in ECG_TRACE_SCOPE /
//                 ECG_TRACE_SCOPE_DETAIL exactly as the exchangers wrap
//                 their codec calls, with the tracer off. This is what
//                 every untraced run pays; budget < 2% over bare.
//   * enabled   — same hooks with the tracer recording (level 2,
//                 snapshot-only), for context on the recording cost.
// ---------------------------------------------------------------------------

int RunTraceOverhead(const std::string& json_path) {
  constexpr size_t kRows = 4096, kCols = 128;
  constexpr int kBits = 2;
  constexpr int kReps = 30;
  const Matrix m = RandomMatrix(kRows, kCols, 12);
  QuantizerOptions opts{kBits, BucketValueMode::kMidpoint};
  // Serial mode: the round trip runs the way it does inside a simulated
  // worker, so the scope cost is measured against the realistic baseline.
  ecg::ThreadPool::SetSerialMode(true);
  ecg::obs::Tracer::Global().Disable();

  const auto bare_pass = [&] {
    auto q = ecg::compress::Quantize(m, opts);
    auto d = ecg::compress::Dequantize(*q);
    benchmark::DoNotOptimize(d->data());
  };
  const auto hooked_pass = [&] {
    // Same hook density as fp_exchange: a phase span around the pass and
    // a detail span around each codec half.
    ECG_TRACE_SCOPE("fp_exchange", /*worker=*/0, /*layer=*/0);
    ecg::Result<ecg::compress::QuantizedMatrix> q = [&] {
      ECG_TRACE_SCOPE_DETAIL("fp_encode", 0, 0);
      return ecg::compress::Quantize(m, opts);
    }();
    ecg::Result<Matrix> d = [&] {
      ECG_TRACE_SCOPE_DETAIL("fp_decode", 0, 0);
      return ecg::compress::Dequantize(*q);
    }();
    benchmark::DoNotOptimize(d->data());
  };

  bare_pass();
  hooked_pass();  // warm both paths
  const double bare_ms = BestOfMs(kReps, bare_pass);
  const double disabled_ms = BestOfMs(kReps, hooked_pass);
  ecg::obs::Tracer::Global().Enable(/*level=*/2, /*chrome_trace_path=*/"");
  const double enabled_ms = BestOfMs(kReps, hooked_pass);
  const uint64_t recorded = ecg::obs::Tracer::Global().recorded_events();
  ecg::obs::Tracer::Global().Disable();
  ecg::ThreadPool::SetSerialMode(false);

  const double overhead_pct = (disabled_ms / bare_ms - 1.0) * 100.0;
  const double enabled_pct = (enabled_ms / bare_ms - 1.0) * 100.0;
  const bool pass = overhead_pct < 2.0;

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  out << "{\n  \"matrix\": {\"rows\": " << kRows << ", \"cols\": " << kCols
      << "},\n  \"bits\": " << kBits << ",\n  \"reps\": " << kReps
      << ",\n  \"bare_roundtrip_ms\": " << bare_ms
      << ",\n  \"traced_disabled_roundtrip_ms\": " << disabled_ms
      << ",\n  \"traced_enabled_roundtrip_ms\": " << enabled_ms
      << ",\n  \"disabled_overhead_pct\": " << overhead_pct
      << ",\n  \"enabled_overhead_pct\": " << enabled_pct
      << ",\n  \"enabled_events_recorded\": " << recorded
      << ",\n  \"budget_pct\": 2.0,\n  \"pass\": "
      << (pass ? "true" : "false") << "\n}\n";
  std::printf(
      "trace overhead: bare %.3f ms | hooks disabled %.3f ms (%+.2f%%) | "
      "hooks enabled %.3f ms (%+.2f%%)  -> %s\n",
      bare_ms, disabled_ms, overhead_pct, enabled_ms, enabled_pct,
      pass ? "PASS (<2%)" : "FAIL (>=2%)");
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  ecg::obs::InitObservabilityFromArgs(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg.rfind("--compress_json", 0) == 0) {
      std::string path = "BENCH_compress.json";
      const auto eq = arg.find('=');
      if (eq != std::string::npos) path = arg.substr(eq + 1);
      return RunCompressComparison(path);
    }
    if (arg.rfind("--trace_overhead", 0) == 0) {
      std::string path = "BENCH_trace_overhead.json";
      const auto eq = arg.find('=');
      if (eq != std::string::npos) path = arg.substr(eq + 1);
      return RunTraceOverhead(path);
    }
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
