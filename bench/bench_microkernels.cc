// Micro-kernel throughput (google-benchmark): the hot inner loops behind
// every experiment — bucket quantization at each bit width, bit packing,
// SpMM over an SBM adjacency, GEMM at GCN-typical shapes, and the wire
// round trip. Useful for spotting kernel regressions independently of the
// end-to-end harnesses.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/bitpack.h"
#include "common/bytes.h"
#include "common/kernels.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/stats.h"
#include "common/trace.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "compress/int8_gemm.h"
#include "compress/quantize.h"
#include "core/trainer.h"
#include "dist/comm.h"
#include "dist/fault.h"
#include "graph/generator.h"
#include "graph/partition.h"
#include "tensor/csr.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace {

using ecg::compress::BucketValueMode;
using ecg::compress::QuantizerOptions;
using ecg::tensor::Matrix;

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  ecg::Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

void BM_Quantize(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const Matrix m = RandomMatrix(1024, 128, 1);
  QuantizerOptions opts{bits, BucketValueMode::kMidpoint};
  for (auto _ : state) {
    auto q = ecg::compress::Quantize(m, opts);
    benchmark::DoNotOptimize(q);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          m.size() * sizeof(float));
}
BENCHMARK(BM_Quantize)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_Dequantize(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const Matrix m = RandomMatrix(1024, 128, 2);
  auto q = ecg::compress::Quantize(
      m, QuantizerOptions{bits, BucketValueMode::kMidpoint});
  q.status().CheckOk();
  for (auto _ : state) {
    auto d = ecg::compress::Dequantize(*q);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          m.size() * sizeof(float));
}
BENCHMARK(BM_Dequantize)->Arg(2)->Arg(8);

void BM_PackBits(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  ecg::Rng rng(3);
  std::vector<uint32_t> values(1 << 16);
  for (auto& v : values) v = static_cast<uint32_t>(rng.NextBelow(1u << bits));
  std::vector<uint32_t> packed;
  for (auto _ : state) {
    ecg::PackBits(values, bits, &packed).CheckOk();
    benchmark::DoNotOptimize(packed);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          values.size());
}
BENCHMARK(BM_PackBits)->Arg(2)->Arg(8);

void BM_UnpackBits(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  ecg::Rng rng(4);
  std::vector<uint32_t> values(1 << 16);
  for (auto& v : values) v = static_cast<uint32_t>(rng.NextBelow(1u << bits));
  std::vector<uint32_t> packed;
  ecg::PackBits(values, bits, &packed).CheckOk();
  std::vector<uint32_t> unpacked;
  for (auto _ : state) {
    ecg::UnpackBits(packed, values.size(), bits, &unpacked).CheckOk();
    benchmark::DoNotOptimize(unpacked);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          values.size());
}
BENCHMARK(BM_UnpackBits)->Arg(2)->Arg(8);

// The fused quantize+dequantize round trip at 1 thread (serial mode, as
// inside a simulated worker) vs the global pool. Args: {bits, pool}.
void BM_QuantizeRoundTripFused(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const bool use_pool = state.range(1) != 0;
  const Matrix m = RandomMatrix(4096, 128, 10);
  QuantizerOptions opts{bits, BucketValueMode::kMidpoint};
  ecg::ThreadPool::SetSerialMode(!use_pool);
  for (auto _ : state) {
    auto q = ecg::compress::Quantize(m, opts);
    auto d = ecg::compress::Dequantize(*q);
    benchmark::DoNotOptimize(d);
  }
  ecg::ThreadPool::SetSerialMode(false);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          m.size() * sizeof(float));
}
BENCHMARK(BM_QuantizeRoundTripFused)
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({8, 0})
    ->Args({8, 1});

void BM_SpMM(benchmark::State& state) {
  ecg::graph::SbmConfig cfg;
  cfg.num_vertices = 4000;
  cfg.num_classes = 8;
  cfg.avg_degree = 16.0;
  cfg.feature_dim = 4;
  cfg.seed = 5;
  auto g = ecg::graph::GenerateSbm(cfg);
  g.status().CheckOk();
  std::vector<std::tuple<uint32_t, uint32_t, float>> trips;
  for (uint32_t v = 0; v < g->num_vertices(); ++v) {
    for (uint32_t u : g->Neighbors(v)) {
      trips.emplace_back(v, u, g->NormWeight(v, u));
    }
  }
  auto adj = ecg::tensor::CsrMatrix::FromTriplets(g->num_vertices(),
                                                  g->num_vertices(), trips);
  adj.status().CheckOk();
  const Matrix x = RandomMatrix(g->num_vertices(), 64, 6);
  Matrix y;
  for (auto _ : state) {
    adj->SpMM(x, &y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          adj->nnz() * 64);
}
BENCHMARK(BM_SpMM);

void BM_Gemm(benchmark::State& state) {
  const size_t hidden = static_cast<size_t>(state.range(0));
  const Matrix a = RandomMatrix(4096, 128, 7);
  const Matrix b = RandomMatrix(128, hidden, 8);
  Matrix c;
  for (auto _ : state) {
    ecg::tensor::Gemm(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 4096 *
                          128 * hidden);
}
BENCHMARK(BM_Gemm)->Arg(16)->Arg(256);

void BM_WireRoundTrip(benchmark::State& state) {
  const Matrix m = RandomMatrix(512, 128, 9);
  auto q = ecg::compress::Quantize(
      m, QuantizerOptions{2, BucketValueMode::kMidpoint});
  q.status().CheckOk();
  for (auto _ : state) {
    std::vector<uint8_t> buf;
    ecg::ByteWriter w(&buf);
    q->AppendTo(&w);
    ecg::ByteReader r(buf);
    ecg::compress::QuantizedMatrix parsed;
    ecg::compress::QuantizedMatrix::ParseFrom(&r, &parsed).CheckOk();
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_WireRoundTrip);

// ---------------------------------------------------------------------------
// --compress_json mode: before/after comparison for the fused compression
// kernels. The "seed" reference below replicates the pre-fusion pipeline
// byte-for-byte: two-pass minmax + divide, an intermediate bucket-id
// vector, element-at-a-time PackBits/UnpackBits, and a separate lookup
// pass. It is timed single-threaded (the seed kernels had no threading).
// ---------------------------------------------------------------------------

struct SeedQuantized {
  uint32_t rows = 0, cols = 0;
  int bits = 0;
  float min_value = 0.0f, bucket_width = 0.0f;
  std::vector<float> bucket_values;
  std::vector<uint32_t> packed_ids;
};

SeedQuantized SeedQuantize(const Matrix& m, int bits) {
  const size_t count = m.size();
  const uint32_t num_buckets = 1u << bits;
  const auto [pmn, pmx] =
      std::minmax_element(m.data(), m.data() + count);
  const float mn = *pmn;
  const float range = *pmx - mn;
  const float width =
      range > 0.0f ? range / static_cast<float>(num_buckets) : 1.0f;
  std::vector<uint32_t> ids(count);
  const float* data = m.data();
  for (size_t i = 0; i < count; ++i) {
    const float rel = (data[i] - mn) / width;
    uint32_t id = rel <= 0.0f ? 0u : static_cast<uint32_t>(rel);
    ids[i] = std::min(id, num_buckets - 1);
  }
  SeedQuantized q;
  q.rows = static_cast<uint32_t>(m.rows());
  q.cols = static_cast<uint32_t>(m.cols());
  q.bits = bits;
  q.min_value = mn;
  q.bucket_width = width;
  q.bucket_values.resize(num_buckets);
  for (uint32_t b = 0; b < num_buckets; ++b) {
    q.bucket_values[b] = mn + width * (static_cast<float>(b) + 0.5f);
  }
  ecg::PackBits(ids, bits, &q.packed_ids).CheckOk();
  return q;
}

Matrix SeedDequantize(const SeedQuantized& q) {
  const size_t count = static_cast<size_t>(q.rows) * q.cols;
  std::vector<uint32_t> ids;
  ecg::UnpackBits(q.packed_ids, count, q.bits, &ids).CheckOk();
  Matrix out(q.rows, q.cols);
  float* data = out.data();
  for (size_t i = 0; i < count; ++i) data[i] = q.bucket_values[ids[i]];
  return out;
}

/// Wall time of the best of `reps` runs of fn, in milliseconds.
template <typename Fn>
double BestOfMs(int reps, const Fn& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    best = std::min(best, ms);
  }
  return best;
}

int RunCompressComparison(const std::string& json_path) {
  // Size the pool before its first use; an explicit ECG_THREADS wins.
  setenv("ECG_THREADS", "8", /*overwrite=*/0);
  const size_t threads = ecg::ThreadPool::Global().num_threads();

  constexpr size_t kRows = 4096, kCols = 128;
  constexpr int kReps = 20;
  const Matrix m = RandomMatrix(kRows, kCols, 11);

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  out << "{\n  \"stamp\": " << ecg::bench::BenchStampJson()
      << ",\n  \"matrix\": {\"rows\": " << kRows << ", \"cols\": " << kCols
      << "},\n  \"threads\": " << threads << ",\n  \"reps\": " << kReps
      << ",\n  \"configs\": [";

  bool first = true;
  for (int bits : {2, 8}) {
    QuantizerOptions opts{bits, BucketValueMode::kMidpoint};
    // Warm up every variant once before timing.
    SeedDequantize(SeedQuantize(m, bits));
    ecg::compress::Dequantize(*ecg::compress::Quantize(m, opts)).ok();

    const double seed_ms = BestOfMs(kReps, [&] {
      const Matrix d = SeedDequantize(SeedQuantize(m, bits));
      benchmark::DoNotOptimize(d.data());
    });
    ecg::ThreadPool::SetSerialMode(true);
    const double fused1_ms = BestOfMs(kReps, [&] {
      auto d = ecg::compress::Dequantize(*ecg::compress::Quantize(m, opts));
      benchmark::DoNotOptimize(d->data());
    });
    ecg::ThreadPool::SetSerialMode(false);
    const double fusedn_ms = BestOfMs(kReps, [&] {
      auto d = ecg::compress::Dequantize(*ecg::compress::Quantize(m, opts));
      benchmark::DoNotOptimize(d->data());
    });

    out << (first ? "" : ",") << "\n    {\"bits\": " << bits
        << ",\n     \"seed_roundtrip_ms\": " << seed_ms
        << ",\n     \"fused_1thread_roundtrip_ms\": " << fused1_ms
        << ",\n     \"fused_" << threads
        << "thread_roundtrip_ms\": " << fusedn_ms
        << ",\n     \"speedup_fused_1thread_vs_seed\": " << seed_ms / fused1_ms
        << ",\n     \"speedup_fused_" << threads
        << "thread_vs_seed\": " << seed_ms / fusedn_ms << "}";
    first = false;
    std::printf(
        "bits=%d  seed %.3f ms | fused x1 %.3f ms (%.2fx) | fused x%zu "
        "%.3f ms (%.2fx)\n",
        bits, seed_ms, fused1_ms, seed_ms / fused1_ms, threads, fusedn_ms,
        seed_ms / fusedn_ms);
  }
  out << "\n  ],";

  // Kernel-registry section: the runtime-dispatched variant vs the forced
  // scalar reference on the same fused round trip (the dispatch gain the
  // per-arch TUs buy over the portable build), plus the fused int8
  // packed-domain GEMM against its dequantize-then-float-GEMM equivalent.
  out << "\n  \"registry\": {\n    \"auto_variant\": \""
      << ecg::kern::ActiveName() << "\",\n    \"variants\": [";
  {
    bool vfirst = true;
    for (const ecg::kern::Kernels* v : ecg::kern::AvailableVariants()) {
      out << (vfirst ? "" : ", ") << "\"" << v->name << "\"";
      vfirst = false;
    }
  }
  out << "],\n    \"roundtrips\": [";
  bool rt_first = true;
  for (int bits : {2, 8}) {
    QuantizerOptions opts{bits, BucketValueMode::kMidpoint};
    ecg::ThreadPool::SetSerialMode(true);
    const double auto_ms = BestOfMs(kReps, [&] {
      auto d = ecg::compress::Dequantize(*ecg::compress::Quantize(m, opts));
      benchmark::DoNotOptimize(d->data());
    });
    ECG_CHECK(ecg::kern::ForceVariant("scalar"));
    const double scalar_ms = BestOfMs(kReps, [&] {
      auto d = ecg::compress::Dequantize(*ecg::compress::Quantize(m, opts));
      benchmark::DoNotOptimize(d->data());
    });
    ECG_CHECK(ecg::kern::ForceVariant("auto"));
    ecg::ThreadPool::SetSerialMode(false);
    out << (rt_first ? "" : ",") << "\n      {\"bits\": " << bits
        << ", \"auto_1thread_roundtrip_ms\": " << auto_ms
        << ", \"scalar_1thread_roundtrip_ms\": " << scalar_ms
        << ", \"speedup_auto_vs_scalar\": " << scalar_ms / auto_ms << "}";
    rt_first = false;
    std::printf("registry bits=%d  %s %.3f ms | scalar %.3f ms (%.2fx)\n",
                bits, ecg::kern::ActiveName(), auto_ms, scalar_ms,
                scalar_ms / auto_ms);
  }
  out << "\n    ],";

  // Int8 packed-domain GEMM gate: boundary-row transform at B=8 — the
  // fused DequantGemmRows consuming the packed payload vs DequantizeInto
  // followed by float GemmRows. Min-of-3 on the full pool, budget >= 1.5x.
  {
    constexpr size_t kN = 256;
    constexpr int kGemmReps = 3;
    const Matrix w = RandomMatrix(kCols, kN, 13);
    std::vector<uint32_t> rows(kRows);
    for (size_t i = 0; i < kRows; ++i) rows[i] = static_cast<uint32_t>(i);
    auto q8 = ecg::compress::QuantizeRows(
        m, rows, QuantizerOptions{8, BucketValueMode::kMidpoint});
    q8.status().CheckOk();
    const ecg::compress::Int8Panel panel = ecg::compress::PackWeightPanel(w);
    Matrix scratch(kRows, kCols);
    Matrix c_ref(kRows, kN), c_fused(kRows, kN);

    ecg::compress::DequantizeInto(*q8, rows, &scratch).CheckOk();  // warm
    ecg::tensor::GemmRows(scratch, w, rows, &c_ref);
    ecg::compress::DequantGemmRows(*q8, panel, rows, &c_fused).CheckOk();
    double max_abs_err = 0.0;
    for (size_t i = 0; i < c_ref.size(); ++i) {
      max_abs_err = std::max(
          max_abs_err, std::fabs(static_cast<double>(c_ref.data()[i]) -
                                 c_fused.data()[i]));
    }

    const double ref_ms = BestOfMs(kGemmReps, [&] {
      c_ref.Reset(kRows, kN);
      ecg::compress::DequantizeInto(*q8, rows, &scratch).CheckOk();
      ecg::tensor::GemmRows(scratch, w, rows, &c_ref);
      benchmark::DoNotOptimize(c_ref.data());
    });
    const double fused_ms = BestOfMs(kGemmReps, [&] {
      c_fused.Reset(kRows, kN);
      ecg::compress::DequantGemmRows(*q8, panel, rows, &c_fused).CheckOk();
      benchmark::DoNotOptimize(c_fused.data());
    });
    const double speedup = ref_ms / fused_ms;
    const bool int8_pass = speedup >= 1.5;
    out << "\n    \"int8_gemm\": {\"rows\": " << kRows << ", \"k\": " << kCols
        << ", \"n\": " << kN << ", \"bits\": 8, \"reps\": " << kGemmReps
        << ",\n      \"dequant_then_float_gemm_ms\": " << ref_ms
        << ",\n      \"fused_dequant_gemm_ms\": " << fused_ms
        << ",\n      \"speedup\": " << speedup
        << ",\n      \"max_abs_error\": " << max_abs_err
        << ",\n      \"budget_speedup\": 1.5,\n      \"pass\": "
        << (int8_pass ? "true" : "false") << "}\n  }\n}\n";
    std::printf(
        "int8 gemm B=8 %zux%zux%zu: dequant+gemm %.3f ms | fused %.3f ms "
        "(%.2fx, max err %.2e) -> %s\n",
        kRows, kCols, kN, ref_ms, fused_ms, speedup, max_abs_err,
        int8_pass ? "PASS (>=1.5x)" : "FAIL (<1.5x)");
  }
  return 0;
}

// ---------------------------------------------------------------------------
// --trace_overhead mode: cost of the observability hooks on the fused
// quantize round trip. Three variants of the same loop:
//   * bare      — no tracing hooks at all (reference);
//   * disabled  — the round trip wrapped in ECG_TRACE_SCOPE /
//                 ECG_TRACE_SCOPE_DETAIL exactly as the exchangers wrap
//                 their codec calls, with the tracer off. This is what
//                 every untraced run pays; budget < 2% over bare.
//   * enabled   — same hooks with the tracer recording (level 2,
//                 snapshot-only), for context on the recording cost.
// ---------------------------------------------------------------------------

int RunTraceOverhead(const std::string& json_path) {
  constexpr size_t kRows = 4096, kCols = 128;
  constexpr int kBits = 2;
  constexpr int kReps = 30;
  const Matrix m = RandomMatrix(kRows, kCols, 12);
  QuantizerOptions opts{kBits, BucketValueMode::kMidpoint};
  // Serial mode: the round trip runs the way it does inside a simulated
  // worker, so the scope cost is measured against the realistic baseline.
  ecg::ThreadPool::SetSerialMode(true);
  ecg::obs::Tracer::Global().Disable();

  const auto bare_pass = [&] {
    auto q = ecg::compress::Quantize(m, opts);
    auto d = ecg::compress::Dequantize(*q);
    benchmark::DoNotOptimize(d->data());
  };
  const auto hooked_pass = [&] {
    // Same hook density as fp_exchange: a phase span around the pass and
    // a detail span around each codec half.
    ECG_TRACE_SCOPE("fp_exchange", /*worker=*/0, /*layer=*/0);
    ecg::Result<ecg::compress::QuantizedMatrix> q = [&] {
      ECG_TRACE_SCOPE_DETAIL("fp_encode", 0, 0);
      return ecg::compress::Quantize(m, opts);
    }();
    ecg::Result<Matrix> d = [&] {
      ECG_TRACE_SCOPE_DETAIL("fp_decode", 0, 0);
      return ecg::compress::Dequantize(*q);
    }();
    benchmark::DoNotOptimize(d->data());
  };

  bare_pass();
  hooked_pass();  // warm both paths
  const double bare_ms = BestOfMs(kReps, bare_pass);
  const double disabled_ms = BestOfMs(kReps, hooked_pass);
  ecg::obs::Tracer::Global().Enable(/*level=*/2, /*chrome_trace_path=*/"");
  const double enabled_ms = BestOfMs(kReps, hooked_pass);
  const uint64_t recorded = ecg::obs::Tracer::Global().recorded_events();
  ecg::obs::Tracer::Global().Disable();
  ecg::ThreadPool::SetSerialMode(false);

  const double overhead_pct = (disabled_ms / bare_ms - 1.0) * 100.0;
  const double enabled_pct = (enabled_ms / bare_ms - 1.0) * 100.0;
  const bool pass = overhead_pct < 2.0;

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  out << "{\n  \"stamp\": " << ecg::bench::BenchStampJson()
      << ",\n  \"matrix\": {\"rows\": " << kRows << ", \"cols\": " << kCols
      << "},\n  \"bits\": " << kBits << ",\n  \"reps\": " << kReps
      << ",\n  \"bare_roundtrip_ms\": " << bare_ms
      << ",\n  \"traced_disabled_roundtrip_ms\": " << disabled_ms
      << ",\n  \"traced_enabled_roundtrip_ms\": " << enabled_ms
      << ",\n  \"disabled_overhead_pct\": " << overhead_pct
      << ",\n  \"enabled_overhead_pct\": " << enabled_pct
      << ",\n  \"enabled_events_recorded\": " << recorded
      << ",\n  \"budget_pct\": 2.0,\n  \"pass\": "
      << (pass ? "true" : "false") << "\n}\n";
  std::printf(
      "trace overhead: bare %.3f ms | hooks disabled %.3f ms (%+.2f%%) | "
      "hooks enabled %.3f ms (%+.2f%%)  -> %s\n",
      bare_ms, disabled_ms, overhead_pct, enabled_ms, enabled_pct,
      pass ? "PASS (<2%)" : "FAIL (>=2%)");
  return pass ? 0 : 1;
}

// ---------------------------------------------------------------------------
// --metrics_overhead mode: cost of the metrics-plane hooks (PR 7). Two
// levels:
//   * micro — the fused quantize round trip instrumented the way the
//     exchangers instrument it (a StatsEnabled-gated RecordStat, a
//     MetricsEnabled-gated histogram Observe). With the plane off, the
//     hooks must cost < 0.5% over the bare loop (one relaxed load and a
//     predictable branch each, no allocation). A/B-timing a 0.4 ms pass
//     cannot resolve a two-load cost against scheduler noise, so the gate
//     divides an amplified hook-only loop (2^20 iterations) by the bare
//     pass; the A/B numbers are still reported for context.
//   * train — wall-clock of a small distributed train with the metrics
//     plane on (live registry + bridge) vs the same train with only
//     memory-mode stats. The baseline already pays the stats
//     instrumentation (saturation scans, residual norms — budgeted when
//     that plane landed); the delta is what the *metrics* plane adds per
//     epoch, and must stay < 2%. min-of-reps on both sides absorbs
//     scheduler noise; a fully-dark run is also timed for context.
// Emits BENCH_obs.json; the CI obs-gate job fails on either budget.
// ---------------------------------------------------------------------------

/// One small distributed train per call; the fixture (graph, partition,
/// options) is built once so repeated calls time only the train.
class TrainOverheadFixture {
 public:
  TrainOverheadFixture() {
    ecg::graph::SbmConfig c;
    c.num_vertices = 4000;
    c.num_classes = 4;
    c.avg_degree = 6.0;
    c.feature_dim = 32;
    c.homophily = 0.8;
    c.degree_skew = 0.0;
    c.seed = 11;
    auto g = ecg::graph::GenerateSbm(c);
    ECG_CHECK(g.ok()) << g.status();
    g_ = std::move(*g);
    ECG_CHECK(ecg::graph::AssignSplits(&g_, 2000, 1000, 1000, 5).ok());
    auto part = ecg::graph::HashPartition(g_, 4);
    ECG_CHECK(part.ok()) << part.status();
    part_ = std::move(*part);
    opt_.model.num_layers = 2;
    opt_.model.hidden_dim = 64;
    opt_.fp_mode = ecg::core::FpMode::kCompressed;
    opt_.bp_mode = ecg::core::BpMode::kResEc;
    // Long enough that fixed-cost scheduler hiccups (~1 ms) are small
    // against the run, short enough for several paired rounds.
    opt_.epochs = 8;
  }

  double WallSeconds() {
    const auto t0 = std::chrono::steady_clock::now();
    auto r = ecg::core::DistributedTrainer(g_, part_, opt_).Train();
    const auto t1 = std::chrono::steady_clock::now();
    ECG_CHECK(r.ok()) << r.status();
    return std::chrono::duration<double>(t1 - t0).count();
  }

 private:
  ecg::graph::Graph g_;
  ecg::graph::Partition part_;
  ecg::core::TrainOptions opt_;
};

int RunMetricsOverhead(const std::string& json_path) {
  constexpr size_t kRows = 4096, kCols = 128;
  constexpr int kBits = 2;
  constexpr int kReps = 30;
  const Matrix m = RandomMatrix(kRows, kCols, 12);
  QuantizerOptions opts{kBits, BucketValueMode::kMidpoint};
  ecg::ThreadPool::SetSerialMode(true);
  ecg::obs::MetricsRegistry::Global().Disable();
  ecg::obs::StatsRegistry::Global().Disable();

  const auto bare_pass = [&] {
    auto q = ecg::compress::Quantize(m, opts);
    auto d = ecg::compress::Dequantize(*q);
    benchmark::DoNotOptimize(d->data());
  };
  const auto hooked_pass = [&] {
    // Hook density as in fp_exchange: one stat record per codec half,
    // one histogram observation per pass.
    auto q = ecg::compress::Quantize(m, opts);
    if (ecg::obs::StatsEnabled()) {
      ecg::obs::RecordStat("fp.bench_encode_values",
                           static_cast<double>(m.size()), 0, 0);
    }
    auto d = ecg::compress::Dequantize(*q);
    if (ecg::obs::MetricsEnabled()) {
      ecg::obs::MetricsRegistry::Global()
          .GetHistogram("ecg_bench_roundtrip_values",
                        "Values pushed through the bench round trip.", {})
          ->Observe(static_cast<double>(m.size()));
    }
    benchmark::DoNotOptimize(d->data());
  };

  bare_pass();
  hooked_pass();  // warm both paths
  // Interleaved rounds: bare and hooked share thermal/scheduler weather,
  // so the min-of-mins difference isolates the hook cost instead of the
  // machine's mood at two different moments.
  double bare_ms = std::numeric_limits<double>::infinity();
  double disabled_ms = std::numeric_limits<double>::infinity();
  for (int round = 0; round < 4; ++round) {
    bare_ms = std::min(bare_ms, BestOfMs(kReps, bare_pass));
    disabled_ms = std::min(disabled_ms, BestOfMs(kReps, hooked_pass));
  }
  // Amplified measurement of the two disabled hooks a pass executes.
  constexpr int kHookIters = 1 << 20;
  const auto hook_only = [&] {
    for (int i = 0; i < kHookIters; ++i) {
      bool seen = ecg::obs::StatsEnabled();
      benchmark::DoNotOptimize(seen);
      seen = ecg::obs::MetricsEnabled();
      benchmark::DoNotOptimize(seen);
    }
  };
  hook_only();
  const double hook_pair_ns =
      BestOfMs(10, hook_only) * 1e6 / kHookIters;  // both hooks, one iter
  ecg::obs::MetricsRegistry::Global().Enable();
  ecg::obs::StatsRegistry::Global().Enable("");
  const double enabled_ms = BestOfMs(kReps, hooked_pass);
  ecg::obs::MetricsRegistry::Global().Disable();
  ecg::obs::StatsRegistry::Global().Disable();
  ecg::obs::MetricsRegistry::Global().Reset();
  ecg::obs::StatsRegistry::Global().Reset();
  ecg::ThreadPool::SetSerialMode(false);

  // Train-level. Dark run first (context), then interleaved rounds of the
  // stats-only baseline and stats + metrics: the pair differs only by the
  // metrics plane, and sharing each round's scheduler weather keeps the
  // delta attributable to it. Serial mode takes the thread-pool scheduler
  // out of the measurement: a 2% budget is meaningless when pool jitter
  // alone is ±4% of a run this short.
  ecg::ThreadPool::SetSerialMode(true);
  TrainOverheadFixture train;
  double train_dark_s = std::numeric_limits<double>::infinity();
  double train_base_s = std::numeric_limits<double>::infinity();
  double train_on_s = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 2; ++rep) {
    train_dark_s = std::min(train_dark_s, train.WallSeconds());
  }
  // Median of the per-round (on - base) deltas: each pair shares its
  // round's weather, and the median shrugs off the rounds where a
  // descheduling event hit one side.
  constexpr int kTrainRounds = 7;
  std::vector<double> deltas;
  deltas.reserve(kTrainRounds);
  for (int rep = 0; rep < kTrainRounds; ++rep) {
    ecg::obs::StatsRegistry::Global().Enable("");
    const double base = train.WallSeconds();
    ecg::obs::MetricsRegistry::Global().Enable();
    const double on = train.WallSeconds();
    ecg::obs::MetricsRegistry::Global().Disable();
    train_base_s = std::min(train_base_s, base);
    train_on_s = std::min(train_on_s, on);
    deltas.push_back(on - base);
  }
  std::sort(deltas.begin(), deltas.end());
  const double median_delta_s = deltas[deltas.size() / 2];
  ecg::obs::StatsRegistry::Global().Disable();
  ecg::obs::MetricsRegistry::Global().Reset();
  ecg::obs::StatsRegistry::Global().Reset();
  ecg::ThreadPool::SetSerialMode(false);

  // Gate on the amplified hook cost relative to a real codec pass; the
  // A/B difference below is reported but too noise-prone to gate on.
  const double disabled_pct = hook_pair_ns / (bare_ms * 1e6) * 100.0;
  const double ab_disabled_pct = (disabled_ms / bare_ms - 1.0) * 100.0;
  const double enabled_pct = (enabled_ms / bare_ms - 1.0) * 100.0;
  const double train_pct = median_delta_s / train_base_s * 100.0;
  const bool disabled_pass = disabled_pct < 0.5;
  const bool train_pass = train_pct < 2.0;
  const bool pass = disabled_pass && train_pass;

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  out << "{\n  \"stamp\": " << ecg::bench::BenchStampJson()
      << ",\n  \"micro\": {\"rows\": " << kRows << ", \"cols\": " << kCols
      << ", \"bits\": " << kBits << ", \"reps\": " << kReps
      << ",\n    \"bare_roundtrip_ms\": " << bare_ms
      << ",\n    \"hooked_disabled_roundtrip_ms\": " << disabled_ms
      << ",\n    \"hooked_enabled_roundtrip_ms\": " << enabled_ms
      << ",\n    \"hook_pair_ns\": " << hook_pair_ns
      << ",\n    \"disabled_overhead_pct\": " << disabled_pct
      << ",\n    \"ab_disabled_overhead_pct\": " << ab_disabled_pct
      << ",\n    \"enabled_overhead_pct\": " << enabled_pct
      << ",\n    \"disabled_budget_pct\": 0.5"
      << ",\n    \"disabled_pass\": " << (disabled_pass ? "true" : "false")
      << "},\n  \"train\": {\"rounds\": 7"
      << ",\n    \"dark_wall_seconds\": " << train_dark_s
      << ",\n    \"stats_only_wall_seconds\": " << train_base_s
      << ",\n    \"stats_and_metrics_wall_seconds\": " << train_on_s
      << ",\n    \"median_paired_delta_seconds\": " << median_delta_s
      << ",\n    \"metrics_overhead_pct\": " << train_pct
      << ",\n    \"metrics_budget_pct\": 2.0"
      << ",\n    \"enabled_pass\": " << (train_pass ? "true" : "false")
      << "},\n  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
  std::printf(
      "metrics overhead (micro): bare %.3f ms | hooks off %.3f ms "
      "(A/B %+.2f%%, amplified %.4f%%) | hooks on %.3f ms (%+.2f%%)\n",
      bare_ms, disabled_ms, ab_disabled_pct, disabled_pct, enabled_ms,
      enabled_pct);
  std::printf(
      "metrics overhead (train): dark %.3f s | stats %.3f s | "
      "stats+metrics %.3f s (metrics median-paired %+.2f%%)\n",
      train_dark_s, train_base_s, train_on_s, train_pct);
  std::printf("metrics budgets (off < 0.5%% micro, on < 2%% train): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

// ---------------------------------------------------------------------------
// --fault_overhead mode: cost of the fault-injection hooks on the message
// hub hot path. Four variants of the same Send/Recv loop:
//   * seedref   — an inline replica of the pre-fault-tolerance hub (plain
//                 mutex + map<(from,tag), deque> push/pop, no injector
//                 branch, no framing) as the reference;
//   * disabled  — the real MessageHub with no injector attached. This is
//                 what every fault-free run pays; budget < 1% over seedref.
//   * framed    — an empty injector attached: every payload is framed
//                 (envelope + CRC32C) and received via TryRecv, no faults.
//   * chaos     — a 2% drop schedule, exercising NACK/retransmit.
// ---------------------------------------------------------------------------

struct SeedHubRef {
  explicit SeedHubRef(uint32_t parties) : parties(parties), stats(parties) {}

  const uint32_t parties;
  ecg::dist::CommStats stats;
  std::mutex mu;
  std::condition_variable cv;
  std::map<std::pair<uint32_t, uint64_t>, std::vector<uint8_t>> messages;

  void Send(uint32_t from, uint32_t to, uint64_t tag,
            std::vector<uint8_t> payload) {
    ECG_CHECK(from < parties && to < parties) << "bad worker id in Send";
    stats.RecordSend(from, to, payload.size());
    {
      std::lock_guard<std::mutex> lock(mu);
      const auto key = std::make_pair(from, tag);
      ECG_CHECK(messages.find(key) == messages.end())
          << "duplicate message from " << from << " tag " << tag;
      messages.emplace(key, std::move(payload));
    }
    cv.notify_all();
  }
  std::vector<uint8_t> Recv(uint32_t to, uint32_t from, uint64_t tag) {
    ECG_CHECK(from < parties && to < parties) << "bad worker id in Recv";
    std::unique_lock<std::mutex> lock(mu);
    const auto key = std::make_pair(from, tag);
    cv.wait(lock, [&] { return messages.count(key) > 0; });
    auto it = messages.find(key);
    std::vector<uint8_t> payload = std::move(it->second);
    messages.erase(it);
    return payload;
  }
};

struct FaultOverheadRow {
  size_t payload_bytes = 0;
  double seed_ms = 0.0, disabled_ms = 0.0, framed_ms = 0.0, chaos_ms = 0.0;

  double DisabledPct() const { return (disabled_ms / seed_ms - 1.0) * 100.0; }
  double FramedPct() const { return (framed_ms / seed_ms - 1.0) * 100.0; }
  double ChaosPct() const { return (chaos_ms / seed_ms - 1.0) * 100.0; }
};

FaultOverheadRow MeasureFaultOverhead(size_t payload_bytes,
                                      uint32_t messages, int reps) {
  const std::vector<uint8_t> payload(payload_bytes, 0x5A);
  FaultOverheadRow row;
  row.payload_bytes = payload_bytes;

  SeedHubRef seedref(2);
  row.seed_ms = BestOfMs(reps, [&] {
    for (uint32_t i = 0; i < messages; ++i) {
      const uint64_t tag = ecg::dist::MessageHub::MakeTag(i, 0, 2);
      seedref.Send(0, 1, tag, payload);
      benchmark::DoNotOptimize(seedref.Recv(1, 0, tag).data());
    }
  });

  ecg::dist::MessageHub hub(2);
  row.disabled_ms = BestOfMs(reps, [&] {
    for (uint32_t i = 0; i < messages; ++i) {
      const uint64_t tag = ecg::dist::MessageHub::MakeTag(i, 0, 2);
      hub.Send(0, 1, tag, payload);
      benchmark::DoNotOptimize(hub.Recv(1, 0, tag).data());
    }
  });

  ecg::dist::FaultInjector empty;
  hub.set_fault_injector(&empty);
  row.framed_ms = BestOfMs(reps, [&] {
    for (uint32_t i = 0; i < messages; ++i) {
      const uint64_t tag = ecg::dist::MessageHub::MakeTag(i, 0, 2);
      hub.Send(0, 1, tag, payload);
      std::vector<uint8_t> out;
      hub.TryRecv(1, 0, tag, &out).CheckOk();
      benchmark::DoNotOptimize(out.data());
    }
  });

  auto chaos = ecg::dist::FaultInjector::Parse("drop=0.02,seed=3,retries=3");
  chaos.status().CheckOk();
  hub.set_fault_injector(&*chaos);
  row.chaos_ms = BestOfMs(reps, [&] {
    for (uint32_t i = 0; i < messages; ++i) {
      const uint64_t tag = ecg::dist::MessageHub::MakeTag(i, 0, 2);
      hub.Send(0, 1, tag, payload);
      std::vector<uint8_t> out;
      // A permanently lost message (p^4 per message) is fine to skip: the
      // bench measures transport cost, not delivery guarantees.
      (void)hub.TryRecv(1, 0, tag, &out);
      benchmark::DoNotOptimize(out.data());
    }
  });
  hub.set_fault_injector(nullptr);
  return row;
}

int RunFaultOverhead(const std::string& json_path) {
  constexpr int kReps = 30;
  // Small control row (per-message constants dominate) and a realistic row
  // sized like a quantized halo slice (where the budget applies: the paper
  // system ships tens-of-KB messages, so a nanosecond-scale hook constant
  // must disappear into the copy cost).
  const FaultOverheadRow small = MeasureFaultOverhead(4096, 2000, kReps);
  const FaultOverheadRow real = MeasureFaultOverhead(65536, 500, kReps);
  const bool pass = real.DisabledPct() < 1.0;

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  out << "{\n  \"stamp\": " << ecg::bench::BenchStampJson()
      << ",\n  \"reps\": " << kReps << ",\n  \"rows\": [";
  bool first = true;
  for (const FaultOverheadRow* r : {&small, &real}) {
    out << (first ? "" : ",") << "\n    {\"payload_bytes\": "
        << r->payload_bytes << ",\n     \"seedref_pass_ms\": " << r->seed_ms
        << ",\n     \"disabled_pass_ms\": " << r->disabled_ms
        << ",\n     \"framed_pass_ms\": " << r->framed_ms
        << ",\n     \"chaos_drop2pct_pass_ms\": " << r->chaos_ms
        << ",\n     \"disabled_overhead_pct\": " << r->DisabledPct()
        << ",\n     \"framed_overhead_pct\": " << r->FramedPct()
        << ",\n     \"chaos_overhead_pct\": " << r->ChaosPct() << "}";
    first = false;
  }
  out << "\n  ],\n  \"budget_pct\": 1.0,\n  \"gated_payload_bytes\": "
      << real.payload_bytes << ",\n  \"pass\": " << (pass ? "true" : "false")
      << "\n}\n";
  for (const FaultOverheadRow* r : {&small, &real}) {
    std::printf(
        "fault overhead @%-6zuB: seedref %.3f ms | disabled %.3f ms "
        "(%+.2f%%) | framed %.3f ms (%+.2f%%) | 2%% drop %.3f ms (%+.2f%%)\n",
        r->payload_bytes, r->seed_ms, r->disabled_ms, r->DisabledPct(),
        r->framed_ms, r->FramedPct(), r->chaos_ms, r->ChaosPct());
  }
  std::printf("disabled-path budget (<1%% at %zuB): %s\n",
              real.payload_bytes, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

// ---------------------------------------------------------------------------
// --overlap mode: end-to-end simulated makespan of the split-phase
// overlapped schedule vs the sequential one. Comm-bound configuration on
// purpose — uncompressed (Non-cp) fp32 halos over the default NetworkModel
// — so the interior-compute window is the only thing that can hide wire
// time. The partition is aligned with the SBM's planted communities: the
// bench gates the overlap schedule, not partitioner quality, and the
// planted clustering makes the cut (and with it the interior fraction that
// earns overlap credit) a controlled function of homophily instead of
// whatever MetisLike converges to on a given seed. Budget: the overlapped
// schedule must cut the simulated makespan by at least 10% at 8 workers.
// Compute charges are measured thread-CPU, so load spikes inflate
// individual runs; each schedule is run three times and the minimum
// makespan — the clean-machine envelope — is compared.

struct OverlapRow {
  uint32_t workers = 0;
  double off_seconds = 0.0;
  double on_seconds = 0.0;
  double ReductionPct() const {
    return off_seconds > 0.0
               ? (off_seconds - on_seconds) / off_seconds * 100.0
               : 0.0;
  }
};

OverlapRow MeasureOverlapMakespan(uint32_t workers) {
  ecg::graph::SbmConfig c;
  c.num_vertices = 12000;
  c.num_classes = 8;
  // Low degree keeps the interior fraction high: a row is interior only if
  // every neighbor is owned, so P(interior) falls off like
  // homophily^degree. Degree 4 at homophily 0.85 leaves roughly half the
  // rows earning overlap credit while the cut still pushes real halo
  // traffic.
  c.avg_degree = 4.0;
  c.feature_dim = 64;
  c.homophily = 0.85;
  c.degree_skew = 0.0;
  c.seed = 7;
  auto g = ecg::graph::GenerateSbm(c);
  ECG_CHECK(g.ok()) << g.status();
  ECG_CHECK(ecg::graph::AssignSplits(&*g, 6000, 2400, 2400, 5).ok());
  // Community-aligned ownership (class mod parts): the cut is then
  // ~(1-homophily) of the edges by construction, a dial the config above
  // sets deliberately.
  ecg::graph::Partition part;
  part.num_parts = workers;
  part.owner.resize(g->num_vertices());
  part.members.resize(workers);
  for (uint32_t v = 0; v < g->num_vertices(); ++v) {
    const uint32_t p =
        static_cast<uint32_t>(g->labels()[v]) % workers;
    part.owner[v] = p;
    part.members[p].push_back(v);
  }

  ecg::core::TrainOptions opt;
  // Four layers: the middle exchanges carry hidden-width halos whose
  // windows also hold hidden x hidden interior transforms — the
  // best-hidden case. The first window is narrow on the wire (feature
  // dim) and the last is credit-poor (hidden x classes transform), so
  // deeper stacks raise the hidable share.
  opt.model.num_layers = 4;
  opt.model.hidden_dim = 256;
  opt.fp_mode = ecg::core::FpMode::kExact;
  opt.bp_mode = ecg::core::BpMode::kExact;
  opt.epochs = 3;
  // One simulated core: compute is charged at the measured rate
  // (Speedup 1.0), which is also what the schedule can hide. More cores
  // shrink the charge but not the wire time, thinning the credit.
  opt.machine.cores = 1;

  OverlapRow row;
  row.workers = workers;
  row.off_seconds = std::numeric_limits<double>::infinity();
  row.on_seconds = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    opt.overlap = false;
    auto off = ecg::core::DistributedTrainer(*g, part, opt).Train();
    ECG_CHECK(off.ok()) << off.status();
    opt.overlap = true;
    auto on = ecg::core::DistributedTrainer(*g, part, opt).Train();
    ECG_CHECK(on.ok()) << on.status();
    row.off_seconds = std::min(row.off_seconds, off->total_sim_seconds);
    row.on_seconds = std::min(row.on_seconds, on->total_sim_seconds);
  }
  return row;
}

int RunOverlapBench(const std::string& json_path) {
  const OverlapRow w4 = MeasureOverlapMakespan(4);
  const OverlapRow w8 = MeasureOverlapMakespan(8);
  const bool pass = w8.ReductionPct() >= 10.0;

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  out << "{\n  \"stamp\": " << ecg::bench::BenchStampJson()
      << ",\n  \"rows\": [";
  bool first = true;
  for (const OverlapRow* r : {&w4, &w8}) {
    out << (first ? "" : ",") << "\n    {\"workers\": " << r->workers
        << ",\n     \"sequential_sim_seconds\": " << r->off_seconds
        << ",\n     \"overlapped_sim_seconds\": " << r->on_seconds
        << ",\n     \"reduction_pct\": " << r->ReductionPct() << "}";
    first = false;
  }
  out << "\n  ],\n  \"budget_reduction_pct\": 10.0,\n  \"gated_workers\": 8"
      << ",\n  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
  for (const OverlapRow* r : {&w4, &w8}) {
    std::printf(
        "overlap @%u workers: sequential %.3f s | overlapped %.3f s "
        "(-%.1f%%)\n",
        r->workers, r->off_seconds, r->on_seconds, r->ReductionPct());
  }
  std::printf("overlap budget (>=10%% reduction at 8 workers): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  ecg::obs::InitObservabilityFromArgs(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg == "--help" || arg == "-h") {
      std::printf(
          "bench_microkernels [mode] [google-benchmark args]\n"
          "modes (each writes a BENCH_*.json stamped with commit/kernel "
          "variant/threads):\n"
          "  --compress_json[=PATH]   fused codec vs seed pipeline; also "
          "the kernel-registry\n"
          "                           auto-vs-scalar round trips and the "
          "fused int8 GEMM gate\n"
          "                           (the trainers' --int8_gemm path, "
          "budget >= 1.5x)\n"
          "  --trace_overhead[=PATH]  observability hook cost (budget < "
          "2%%)\n"
          "  --metrics_overhead[=PATH] metrics-plane hook cost (off < "
          "0.5%% micro, on < 2%% train)\n"
          "  --fault_overhead[=PATH]  fault-injection hook cost (budget < "
          "1%%)\n"
          "  --overlap[=PATH]         overlapped vs sequential makespan "
          "(budget >= 10%%)\n"
          "kernel dispatch:\n"
          "  --kernels=NAME           force a registry variant: "
          "scalar|avx2|avx512|neon|auto\n"
          "  ECG_KERNELS=NAME         environment equivalent (flag wins)\n"
          "Without a mode, runs the google-benchmark micro-kernel suite.\n");
      return 0;
    }
    if (arg.rfind("--compress_json", 0) == 0) {
      std::string path = "BENCH_compress.json";
      const auto eq = arg.find('=');
      if (eq != std::string::npos) path = arg.substr(eq + 1);
      return RunCompressComparison(path);
    }
    if (arg.rfind("--trace_overhead", 0) == 0) {
      std::string path = "BENCH_trace_overhead.json";
      const auto eq = arg.find('=');
      if (eq != std::string::npos) path = arg.substr(eq + 1);
      return RunTraceOverhead(path);
    }
    if (arg.rfind("--metrics_overhead", 0) == 0) {
      std::string path = "BENCH_obs.json";
      const auto eq = arg.find('=');
      if (eq != std::string::npos) path = arg.substr(eq + 1);
      return RunMetricsOverhead(path);
    }
    if (arg.rfind("--fault_overhead", 0) == 0) {
      std::string path = "BENCH_fault_overhead.json";
      const auto eq = arg.find('=');
      if (eq != std::string::npos) path = arg.substr(eq + 1);
      return RunFaultOverhead(path);
    }
    if (arg.rfind("--overlap", 0) == 0) {
      std::string path = "BENCH_overlap.json";
      const auto eq = arg.find('=');
      if (eq != std::string::npos) path = arg.substr(eq + 1);
      return RunOverlapBench(path);
    }
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
