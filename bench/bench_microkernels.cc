// Micro-kernel throughput (google-benchmark): the hot inner loops behind
// every experiment — bucket quantization at each bit width, bit packing,
// SpMM over an SBM adjacency, GEMM at GCN-typical shapes, and the wire
// round trip. Useful for spotting kernel regressions independently of the
// end-to-end harnesses.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/bitpack.h"
#include "common/bytes.h"
#include "common/random.h"
#include "compress/quantize.h"
#include "graph/generator.h"
#include "tensor/csr.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace {

using ecg::compress::BucketValueMode;
using ecg::compress::QuantizerOptions;
using ecg::tensor::Matrix;

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  ecg::Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

void BM_Quantize(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const Matrix m = RandomMatrix(1024, 128, 1);
  QuantizerOptions opts{bits, BucketValueMode::kMidpoint};
  for (auto _ : state) {
    auto q = ecg::compress::Quantize(m, opts);
    benchmark::DoNotOptimize(q);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          m.size() * sizeof(float));
}
BENCHMARK(BM_Quantize)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_Dequantize(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const Matrix m = RandomMatrix(1024, 128, 2);
  auto q = ecg::compress::Quantize(
      m, QuantizerOptions{bits, BucketValueMode::kMidpoint});
  q.status().CheckOk();
  for (auto _ : state) {
    auto d = ecg::compress::Dequantize(*q);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          m.size() * sizeof(float));
}
BENCHMARK(BM_Dequantize)->Arg(2)->Arg(8);

void BM_PackBits(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  ecg::Rng rng(3);
  std::vector<uint32_t> values(1 << 16);
  for (auto& v : values) v = static_cast<uint32_t>(rng.NextBelow(1u << bits));
  std::vector<uint32_t> packed;
  for (auto _ : state) {
    ecg::PackBits(values, bits, &packed).CheckOk();
    benchmark::DoNotOptimize(packed);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          values.size());
}
BENCHMARK(BM_PackBits)->Arg(2)->Arg(8);

void BM_SpMM(benchmark::State& state) {
  ecg::graph::SbmConfig cfg;
  cfg.num_vertices = 4000;
  cfg.num_classes = 8;
  cfg.avg_degree = 16.0;
  cfg.feature_dim = 4;
  cfg.seed = 5;
  auto g = ecg::graph::GenerateSbm(cfg);
  g.status().CheckOk();
  std::vector<std::tuple<uint32_t, uint32_t, float>> trips;
  for (uint32_t v = 0; v < g->num_vertices(); ++v) {
    for (uint32_t u : g->Neighbors(v)) {
      trips.emplace_back(v, u, g->NormWeight(v, u));
    }
  }
  auto adj = ecg::tensor::CsrMatrix::FromTriplets(g->num_vertices(),
                                                  g->num_vertices(), trips);
  adj.status().CheckOk();
  const Matrix x = RandomMatrix(g->num_vertices(), 64, 6);
  Matrix y;
  for (auto _ : state) {
    adj->SpMM(x, &y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          adj->nnz() * 64);
}
BENCHMARK(BM_SpMM);

void BM_Gemm(benchmark::State& state) {
  const size_t hidden = static_cast<size_t>(state.range(0));
  const Matrix a = RandomMatrix(4096, 128, 7);
  const Matrix b = RandomMatrix(128, hidden, 8);
  Matrix c;
  for (auto _ : state) {
    ecg::tensor::Gemm(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 4096 *
                          128 * hidden);
}
BENCHMARK(BM_Gemm)->Arg(16)->Arg(256);

void BM_WireRoundTrip(benchmark::State& state) {
  const Matrix m = RandomMatrix(512, 128, 9);
  auto q = ecg::compress::Quantize(
      m, QuantizerOptions{2, BucketValueMode::kMidpoint});
  q.status().CheckOk();
  for (auto _ : state) {
    std::vector<uint8_t> buf;
    ecg::ByteWriter w(&buf);
    q->AppendTo(&w);
    ecg::ByteReader r(buf);
    ecg::compress::QuantizedMatrix parsed;
    ecg::compress::QuantizedMatrix::ParseFrom(&r, &parsed).CheckOk();
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_WireRoundTrip);

}  // namespace

BENCHMARK_MAIN();
