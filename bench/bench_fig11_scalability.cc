// Figure 11: scalability with the number of machines (2..13, the paper's
// cluster-1 size) under the Hash and METIS partitioning strategies, for
// EC-Graph and EC-Graph-S on reddit-sim and products-sim.
//
// Expected shape: per-epoch time falls with more machines (compute
// shrinks faster than the halo grows), and the METIS-like partitioner is
// consistently faster than Hash because its edge-cut — and therefore the
// exchanged byte volume — is smaller.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/sampling_trainer.h"
#include "core/trainer.h"
#include "graph/partition.h"

namespace {

using ecg::bench::GetBenchDataset;
using ecg::graph::Partition;

double EpochTimeFullBatch(const ecg::graph::Graph& g, const Partition& p,
                          const char* dataset, uint32_t epochs) {
  const auto d = GetBenchDataset(dataset);
  ecg::core::TrainOptions opt;
  opt.model = ecg::bench::ModelFor(dataset, 2);
  opt.fp_mode = ecg::core::FpMode::kReqEc;
  opt.bp_mode = ecg::core::BpMode::kResEc;
  opt.exchange.fp_bits = d.req_ec_bits;
  opt.exchange.bp_bits = d.res_ec_bits;
  opt.epochs = epochs;
  ecg::core::DistributedTrainer trainer(g, p, opt);
  auto r = trainer.Train();
  r.status().CheckOk();
  return r->avg_epoch_seconds;
}

double EpochTimeSampled(const ecg::graph::Graph& g, const Partition& p,
                        const char* dataset, uint32_t epochs) {
  const auto d = GetBenchDataset(dataset);
  ecg::core::SamplingTrainOptions opt;
  opt.model = ecg::bench::ModelFor(dataset, 2);
  opt.fanouts = d.fanouts_by_layers[2].empty()
                    ? ecg::core::Fanouts(2, 10)
                    : d.fanouts_by_layers[2];
  opt.exchange.fp_bits = 8;
  opt.exchange.bp_bits = 8;
  opt.epochs = epochs;
  ecg::core::SamplingTrainer trainer(g, p, opt);
  auto r = trainer.Train();
  r.status().CheckOk();
  return r->avg_epoch_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  ecg::bench::InitBench(&argc, argv);
  ecg::bench::PrintHeader(
      "Fig. 11 — scalability vs machines, Hash vs METIS-like partitioning "
      "(per-epoch seconds, 2-layer)");
  for (const char* dataset : {"reddit-sim", "products-sim"}) {
    const ecg::graph::Graph& g = ecg::bench::LoadGraphCached(dataset);
    const uint32_t epochs =
        ecg::bench::ScaledEpochs(GetBenchDataset(dataset).timing_epochs);
    std::printf("\n-- %s --\n", dataset);
    std::printf("%9s | %21s | %21s | %s\n", "", "EC-Graph (full)",
                "EC-Graph-S", "edge-cut");
    std::printf("%9s | %10s %10s | %10s %10s | %10s %10s\n", "machines",
                "hash", "metis", "hash", "metis", "hash", "metis");
    for (uint32_t machines : {2u, 4u, 6u, 8u, 10u, 13u}) {
      auto hash = ecg::graph::HashPartition(g, machines);
      hash.status().CheckOk();
      auto metis = ecg::graph::MetisLikePartition(g, machines);
      metis.status().CheckOk();
      std::printf("%9u | %9ss %9ss | %9ss %9ss | %10llu %10llu\n", machines,
                  ecg::bench::FormatSeconds(
                      EpochTimeFullBatch(g, *hash, dataset, epochs))
                      .c_str(),
                  ecg::bench::FormatSeconds(
                      EpochTimeFullBatch(g, *metis, dataset, epochs))
                      .c_str(),
                  ecg::bench::FormatSeconds(
                      EpochTimeSampled(g, *hash, dataset, epochs))
                      .c_str(),
                  ecg::bench::FormatSeconds(
                      EpochTimeSampled(g, *metis, dataset, epochs))
                      .c_str(),
                  static_cast<unsigned long long>(hash->EdgeCut(g)),
                  static_cast<unsigned long long>(metis->EdgeCut(g)));
      std::fflush(stdout);
    }
  }
  return 0;
}
